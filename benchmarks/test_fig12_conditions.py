"""Fig. 12: lollipop, water, walking and running barely affect MandiPass.

Paper: the similarity distributions between normal and condition
recordings stay within the acceptance region; VSR > 99 % for water, and
'activity does not affect the performance'.  We enroll from nominal
recordings and probe under each condition.
"""

import numpy as np

from repro.eval.distributions import (
    distance_distribution,
    genuine_distances_to_templates,
)
from repro.eval.reporting import render_table
from repro.physio.conditions import RecordingCondition
from repro.types import Activity, Mouthful

from conftest import once

CONDITIONS = {
    "lollipop": RecordingCondition(mouthful=Mouthful.LOLLIPOP),
    "water": RecordingCondition(mouthful=Mouthful.WATER),
    "walk": RecordingCondition(activity=Activity.WALK),
    "run": RecordingCondition(activity=Activity.RUN),
}


def test_fig12_food_and_activity(
    benchmark, enrolled, condition_embedder, operating_threshold
):
    templates, _, _ = enrolled

    def run():
        out = {}
        for name, condition in CONDITIONS.items():
            emb, labels = condition_embedder(condition)
            distances = genuine_distances_to_templates(emb, templates, labels)
            vsr = float(np.mean(distances <= operating_threshold))
            out[name] = (vsr, distance_distribution(distances))
        return out

    results = once(benchmark, run)

    print()
    for name, (vsr, dist) in results.items():
        populated = {k: round(v, 3) for k, v in dist.items() if v > 0.0}
        print(f"Fig. 12 [{name}]: VSR {vsr:.3f}  distance distribution {populated}")

    rows = [[name, f"{vsr:.3f}"] for name, (vsr, _) in results.items()]
    print(render_table(["condition", "VSR"], rows,
                       title="Fig. 12 - food and activity robustness"))

    # Shape: every condition keeps a high VSR (paper: ~99 %+; we allow a
    # simulator band), and food affects less than running.
    for name, (vsr, _) in results.items():
        assert vsr > 0.85, f"{name} VSR {vsr:.3f}"
    assert results["lollipop"][0] >= results["run"][0] - 0.05

"""Fig. 10(b): the FAR/FRR curves and the headline EER.

Paper: mean same-user distance 0.4884, different-user 0.7032; FAR = FRR
at threshold 0.5485 giving EER 1.28 %.  We evaluate the production
extractor on the 34 disjoint evaluation users with the paper's pairwise
protocol (Eq. 9/10) and report the same quantities.
"""

import numpy as np

from repro.eval.metrics import far_frr_curve
from repro.eval.reporting import render_series, render_table

from conftest import once

PAPER = {"eer": 0.0128, "threshold": 0.5485, "genuine": 0.4884, "impostor": 0.7032}


def test_fig10b_far_frr_and_eer(benchmark, baseline_eer):
    eer, genuine, impostor = baseline_eer

    def run():
        thresholds, far, frr = far_frr_curve(genuine, impostor, num_points=21)
        return thresholds, far, frr

    thresholds, far, frr = once(benchmark, run)

    print()
    print(render_series(
        "Fig. 10(b) - FAR over threshold",
        [round(t, 3) for t in thresholds[::4]],
        [round(v, 4) for v in far[::4]],
        x_label="thr", y_label="FAR",
    ))
    print(render_series(
        "Fig. 10(b) - FRR over threshold",
        [round(t, 3) for t in thresholds[::4]],
        [round(v, 4) for v in frr[::4]],
        x_label="thr", y_label="FRR",
    ))
    print(render_table(
        ["quantity", "paper", "measured"],
        [
            ["EER", PAPER["eer"], round(eer.eer, 4)],
            ["threshold at EER", PAPER["threshold"], round(eer.threshold, 4)],
            ["mean genuine distance", PAPER["genuine"], round(float(genuine.mean()), 4)],
            ["mean impostor distance", PAPER["impostor"], round(float(impostor.mean()), 4)],
        ],
        title="Fig. 10(b) - headline verification numbers",
    ))

    # Shape: FAR rises and FRR falls with the threshold, they cross once,
    # and the EER lands in the paper's low-single-digit-percent band.
    assert np.all(np.diff(far) >= 0.0)
    assert np.all(np.diff(frr) <= 0.0)
    assert genuine.mean() < impostor.mean()
    assert eer.eer < 0.06, f"EER {eer.eer:.4f} out of band"
    assert 0.2 < eer.threshold < 0.9

"""Long-term stability (Section VII-F) and overhead (Section VII-E).

Paper: after two weeks the average VSR of six volunteers stays above
99.5 %.  Overhead: signal collection ~0.2 s, preprocessing < 0.01 s,
extraction < 1 s on the earbud CPU, model ~5 MB + template ~1.8 KB
(< 6 MB total).
"""

import time

import numpy as np

from repro.eval.distributions import genuine_distances_to_templates
from repro.eval.reporting import render_table
from repro.physio.conditions import RecordingCondition

from conftest import once


def test_longterm_two_weeks(
    benchmark, enrolled, condition_embedder, operating_threshold
):
    templates, _, _ = enrolled

    def run():
        emb, labels = condition_embedder(RecordingCondition(days_elapsed=14.0))
        distances = genuine_distances_to_templates(emb, templates, labels)
        rng = np.random.default_rng(1)
        chosen = rng.choice(np.unique(labels), size=6, replace=False)
        vsrs = [
            float(np.mean(distances[labels == person] <= operating_threshold))
            for person in chosen
        ]
        return float(np.mean(vsrs)), vsrs

    mean_vsr, vsrs = once(benchmark, run)
    print()
    print(
        "Section VII-F - six volunteers, two-week gap: per-user VSR "
        + " ".join(f"{v:.3f}" for v in vsrs)
        + f"; mean {mean_vsr:.4f} (paper > 0.995)"
    )

    # Shape: the biometric is stable over two weeks.
    assert mean_vsr > 0.9


def test_overhead_time_and_storage(benchmark, production_model, users):
    """End-to-end per-request cost on this host, plus storage accounting."""
    from repro.core.frontend import make_frontend
    from repro.core.mandibleprint import extract_embeddings
    from repro.dsp.pipeline import Preprocessor
    from repro.imu import Recorder
    from repro.physio import sample_population

    person = sample_population(4, 1, seed=0)[1]
    recorder = Recorder(seed=0)
    recording = recorder.record(person)
    preprocessor = Preprocessor()
    frontend = make_frontend("spectral")

    def one_request():
        signal_array = preprocessor.process(recording)
        features = frontend.transform(signal_array)
        return extract_embeddings(production_model, features[None])

    # Timed by pytest-benchmark (many rounds: this is an actual
    # per-request latency measurement).
    benchmark(one_request)

    t0 = time.perf_counter()
    preprocessor.process(recording)
    preprocess_s = time.perf_counter() - t0

    collection_s = 60.0 / 350.0  # n / sampling rate, the paper's figure
    model_mb = production_model.storage_nbytes() / 1e6
    template_kb = production_model.config.embedding_dim * 4 / 1024

    print()
    print(render_table(
        ["component", "paper", "measured"],
        [
            ["signal collection (s)", "0.2", f"{collection_s:.3f}"],
            ["preprocessing (s)", "< 0.01", f"{preprocess_s:.4f}"],
            ["extractor storage (MB)", "~5", f"{model_mb:.2f}"],
            ["template storage (KB)", "~1.8", f"{template_kb:.2f}"],
        ],
        title="Section VII-E - overhead",
    ))

    # Shape: collection dominates neither; storage within the paper's
    # single-digit-MB budget.
    assert preprocess_s < 0.05
    assert model_mb < 8.0
    assert template_kb < 4.0

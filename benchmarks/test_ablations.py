"""Ablations of the design choices DESIGN.md calls out.

* front end: rectified-spectral (ours) vs the paper's temporal gradient
  sign-split vs its sorted variant;
* two-branch direction split vs collapsing both directions into one;
* high-pass filtering on/off under running noise;
* MAD outlier replacement on/off under glitchy sensors.
"""

import dataclasses

import numpy as np

from repro.config import PreprocessConfig
from repro.core.mandibleprint import extract_embeddings
from repro.core.similarity import center_embedding
from repro.datasets.standard import user_spec
from repro.datasets.synth import generate_dataset
from repro.eval.metrics import equal_error_rate
from repro.eval.pairs import genuine_impostor_distances
from repro.eval.reporting import render_table
from repro.physio.conditions import RecordingCondition
from repro.types import Activity

from conftest import once, sweep_eer, train_sweep_model


def test_ablation_frontends(benchmark, cache):
    """EER of each front end at sweep scale."""

    def run():
        from repro.config import ExtractorConfig, TrainingConfig
        from repro.core.training import train_extractor
        from repro.datasets.standard import hired_spec

        out = {}
        for kind in ("spectral", "gradient", "gradient-sorted"):
            width = 31 if kind == "spectral" else 30
            config = ExtractorConfig(frontend=kind, input_width=width)
            hired = cache.get(
                dataclasses.replace(
                    hired_spec(num_people=24, trials_per_person=10),
                    frontend=kind,
                )
            )
            model, _ = train_extractor(
                hired.features,
                hired.labels,
                extractor_config=config,
                training_config=TrainingConfig(epochs=10, batch_size=64,
                                               weight_decay=1e-4),
            )
            users = cache.get(
                dataclasses.replace(
                    user_spec(num_people=20, trials_per_person=15), frontend=kind
                )
            )
            emb = center_embedding(extract_embeddings(model, users.features))
            genuine, impostor = genuine_impostor_distances(emb, users.labels)
            out[kind] = equal_error_rate(genuine, impostor).eer
        return out

    eers = once(benchmark, run)

    print()
    print(render_table(
        ["front end", "EER"],
        [[k, f"{v:.4f}"] for k, v in eers.items()],
        title="Ablation - direction-splitting front ends",
    ))

    # Shape: the spectral front end is why our EER approaches the paper's;
    # it must beat the strictly temporal gradient reading on this
    # substrate (see DESIGN.md on sampling-phase scrambling).
    assert eers["spectral"] < eers["gradient"]


def test_ablation_highpass_under_running(benchmark, cache, production_model):
    """Disable the 20 Hz high-pass and probe while running."""

    def run():
        run_cond = RecordingCondition(activity=Activity.RUN)
        spec = dataclasses.replace(
            user_spec(num_people=12, trials_per_person=10),
            condition=run_cond,
            recorder_seed=13,
        )
        eers = {}
        for label, cutoff in (("with 20 Hz high-pass", 20.0), ("no high-pass", 0.5)):
            preprocess = PreprocessConfig(highpass_cutoff_hz=cutoff)
            dataset = generate_dataset(spec, preprocess=preprocess)
            emb = center_embedding(
                extract_embeddings(production_model, dataset.features)
            )
            genuine, impostor = genuine_impostor_distances(emb, dataset.labels)
            eers[label] = equal_error_rate(genuine, impostor).eer
        return eers

    eers = once(benchmark, run)

    print()
    print(render_table(
        ["pipeline", "EER while running"],
        [[k, f"{v:.4f}"] for k, v in eers.items()],
        title="Ablation - high-pass filtering under body motion",
    ))

    # Shape: removing the high-pass lets sub-20 Hz body motion pollute
    # the biometric; EER must not improve without the filter.
    assert eers["with 20 Hz high-pass"] <= eers["no high-pass"] + 0.01


def test_ablation_mad_replacement(benchmark, cache, production_model):
    """Disable MAD replacement on a glitch-prone device."""
    import repro.imu.device as device_mod

    glitchy = dataclasses.replace(
        device_mod.MPU6050, spike_probability=0.01, spike_magnitude_counts=3000.0
    )

    def run():
        spec = dataclasses.replace(
            user_spec(num_people=12, trials_per_person=10),
            device=glitchy,
            recorder_seed=17,
        )
        eers = {}
        for label, threshold in (("with MAD", 3.5), ("no MAD", 1e9)):
            preprocess = PreprocessConfig(mad_threshold=threshold)
            dataset = generate_dataset(spec, preprocess=preprocess)
            emb = center_embedding(
                extract_embeddings(production_model, dataset.features)
            )
            genuine, impostor = genuine_impostor_distances(emb, dataset.labels)
            eers[label] = equal_error_rate(genuine, impostor).eer
        return eers

    eers = once(benchmark, run)

    print()
    print(render_table(
        ["pipeline", "EER on glitchy device"],
        [[k, f"{v:.4f}"] for k, v in eers.items()],
        title="Ablation - MAD outlier replacement",
    ))

    # Shape: outlier replacement must not hurt, and usually helps, on a
    # glitch-prone part.
    assert eers["with MAD"] <= eers["no MAD"] + 0.02

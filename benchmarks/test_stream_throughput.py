"""Streaming decision throughput: N sessions vs one ``AuthServer``.

The sweep behind the "continuous authentication" claim (``README.md``,
DESIGN.md §4j).  One shared server, N ``StreamSession`` producers each
pushing chunked IMU and collecting ``SessionDecision`` events.  Two
bars asserted:

* **exactly once** — every leg of the sweep emits precisely one
  decision per detected onset (no losses, no duplicates);
* **streams keep up** — the best sweep point sustains at least 0.95x
  the per-decision throughput of the sequential batch path (the
  dynamic batcher amortises windows across sessions, so concurrency
  should win, not merely break even).

Results land in ``BENCH_stream.json`` at the repo root.  Set
``STREAM_QUICK=1`` (CI smoke) to sweep N=1/4 with fewer repeats; the
full run sweeps N=1/2/4/8.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.stream.bench import stream_benchmark

QUICK = os.environ.get("STREAM_QUICK", "") == "1"
RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_stream.json"


@pytest.fixture(scope="module")
def sweep() -> dict:
    if QUICK:
        data = stream_benchmark(
            session_counts=(1, 4), repeats=4, output_path=RESULTS_PATH
        )
    else:
        data = stream_benchmark(output_path=RESULTS_PATH)
    line = " | ".join(
        f"N={row['sessions']}: {row['throughput_dps']:.0f} dps "
        f"(p95 {row['decision_latency_p95_ms']:.0f} ms)"
        for row in data["sweep"]
    )
    print(
        f"\nstream sweep: {line} | sequential "
        f"{data['sequential']['throughput_rps']:.0f} rps"
    )
    return data


def test_every_leg_is_exactly_once(sweep):
    """No sweep point may lose or duplicate a decision."""
    assert sweep["claims"]["exactly_once"] is True
    for row in sweep["sweep"]:
        assert row["decisions"] == row["expected_decisions"], (
            f"N={row['sessions']}: {row['decisions']} decisions for "
            f"{row['expected_decisions']} detected onsets"
        )
        assert row["ok"] == row["decisions"], (
            f"N={row['sessions']}: {row['decisions'] - row['ok']} "
            "decisions carried errors"
        )


def test_streams_sustain_sequential_throughput(sweep):
    """Best concurrency level must reach >=0.95x the sequential path."""
    ratio = sweep["claims"]["ratio_vs_sequential"]
    assert sweep["claims"]["meets_095x_sequential"], (
        f"best sweep point only reaches {ratio:.2f}x the sequential "
        f"batch path ({sweep['claims']['best_throughput_dps']:.0f} dps "
        f"at N={sweep['claims']['best_sessions']})"
    )


def test_concurrency_amortises_the_batcher(sweep):
    """More sessions must not collapse throughput: the top sweep point
    should beat the single-session one."""
    by_n = {row["sessions"]: row["throughput_dps"] for row in sweep["sweep"]}
    best_multi = max(v for n, v in by_n.items() if n > 1)
    assert best_multi >= by_n[1], (
        f"multi-session throughput {best_multi:.0f} dps fell below the "
        f"single-session {by_n[1]:.0f} dps"
    )

"""Fig. 11: effect of system settings on EER.

(a) number of involved axes 1..6 -- paper: 14.46, 5.29, 2.05, 1.32,
    1.29, 1.28 % (monotone improvement; accelerometer-only = 2.05 %);
(b) training-set length 10..60 s per hired person -- monotone
    improvement, saturating near the top;
(c) MandiblePrint length 32..512 -- monotone improvement.

Each sweep point trains its own reduced-scale extractor (see
benchmarks/conftest.py for the sweep scale), so absolute EERs sit above
the production model's; the paper's *shape* -- monotone orderings and
where the big drops happen -- is what we assert.
"""

import dataclasses

import numpy as np

from repro.config import ExtractorConfig
from repro.eval.reporting import render_series

from conftest import SWEEP_EPOCHS, once, sweep_eer, train_sweep_model

PAPER_AXES_EER = [14.46, 5.29, 2.05, 1.32, 1.29, 1.28]


def test_fig11a_effect_of_axes(benchmark, cache):
    def run():
        eers = []
        for axes in range(1, 7):
            model = train_sweep_model(cache, max_axes=axes)
            eers.append(sweep_eer(cache, model, max_axes=axes).eer)
        return eers

    eers = once(benchmark, run)

    print()
    print(render_series(
        "Fig. 11(a) - EER vs involved axes (paper: "
        + " ".join(f"{v}%" for v in PAPER_AXES_EER) + ")",
        list(range(1, 7)),
        [round(100 * e, 2) for e in eers],
        x_label="axes", y_label="EER %",
    ))

    # Shape: more axes help a lot at the low end (paper: 14.46 % with
    # one axis vs 2.05 % accel-only vs 1.28 % with all six).  At sweep
    # scale the gyro tail can be flat-to-noisy (see EXPERIMENTS.md), so
    # the assertions target the robust orderings: the single-axis system
    # is clearly the worst and adding axes buys a large factor.
    assert eers[2] < 0.75 * eers[0]       # accel-only much better than 1 axis
    assert eers[5] < 0.8 * eers[0]        # full set much better than 1 axis
    assert min(eers[2:]) <= min(eers[:2])  # >=3 axes dominate


def test_fig11b_effect_of_training_set_length(benchmark, cache):
    # Trials per hired person stand in for seconds of collected voicing
    # (the paper sweeps 10..60 s).
    trial_counts = [2, 4, 6, 8, 10]

    def run():
        eers = []
        for trials in trial_counts:
            model = train_sweep_model(cache, trials=trials)
            eers.append(sweep_eer(cache, model).eer)
        return eers

    eers = once(benchmark, run)

    print()
    print(render_series(
        "Fig. 11(b) - EER vs training trials per hired person",
        trial_counts,
        [round(100 * e, 2) for e in eers],
        x_label="trials", y_label="EER %",
    ))

    # Shape: more training data helps; the largest budget beats the
    # smallest clearly and the curve is near-monotone.
    assert eers[-1] < eers[0]
    assert eers[-1] <= min(eers) + 0.02


def test_fig11c_effect_of_mandibleprint_length(benchmark, cache):
    dims = [32, 64, 128, 256, 512]

    def run():
        eers = []
        for dim in dims:
            config = ExtractorConfig(embedding_dim=dim)
            model = train_sweep_model(cache, extractor_config=config)
            eers.append(sweep_eer(cache, model).eer)
        return eers

    eers = once(benchmark, run)

    print()
    print(render_series(
        "Fig. 11(c) - EER vs MandiblePrint length (paper: decreasing, "
        "<1.5% at 512)",
        dims,
        [round(100 * e, 2) for e in eers],
        x_label="dim", y_label="EER %",
    ))

    # Shape: longer embeddings do not hurt; 512 is among the best and
    # clearly better than 32.
    assert eers[-1] <= eers[0]
    assert eers[-1] <= min(eers) + 0.02

"""Observability overhead: the no-op path must not tax the hot path.

PR 2 bought a ~4x faster verify forward; the instrumentation threaded
through the same path in this PR must not quietly give it back.  Three
timings of the same ``verify_many`` at B=64:

* **uninstrumented** -- the obs runtime helpers stubbed out to bare
  ``pass`` functions, reconstructing the pre-instrumentation baseline;
* **no-op** -- the shipped default: every call site runs, but against
  the process-wide :class:`NullRegistry`;
* **collecting** -- a live registry, the fully instrumented run.

The contract asserted here (and in DESIGN.md §4e): the no-op path stays
within 5% of the uninstrumented baseline, so leaving the
instrumentation compiled-in costs nothing measurable.  The live run's
snapshot is written to ``METRICS_snapshot.json`` (uploaded as a CI
artifact next to ``BENCH_hotpath.json``); set ``OBS_QUICK=1`` for the
CI smoke configuration.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.config import (
    ExtractorConfig,
    InferenceConfig,
    MandiPassConfig,
    SecurityConfig,
)
from repro.core.extractor import TwoBranchExtractor
from repro.core.system import MandiPass
from repro.imu import Recorder
from repro.obs import runtime as obs_runtime
from repro.physio import sample_population

from conftest import once

QUICK = os.environ.get("OBS_QUICK", "") == "1"
BATCH = 64
REPEATS = 7 if QUICK else 11
SNAPSHOT_PATH = Path(__file__).resolve().parents[1] / "METRICS_snapshot.json"

#: The no-op path may cost at most this factor over uninstrumented.
NOOP_BUDGET = 1.05


def _time_once(func):
    start = time.perf_counter()
    func()
    return time.perf_counter() - start


class _InertSpan:
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_INERT_SPAN = _InertSpan()


@contextlib.contextmanager
def _uninstrumented():
    """Stub the obs helpers to nothing: the pre-instrumentation baseline."""
    saved = (
        obs_runtime.inc,
        obs_runtime.observe,
        obs_runtime.observe_batch_size,
        obs_runtime.set_gauge,
        obs_runtime.span,
    )
    obs_runtime.inc = lambda *args, **kwargs: None
    obs_runtime.observe = lambda *args, **kwargs: None
    obs_runtime.observe_batch_size = lambda *args, **kwargs: None
    obs_runtime.set_gauge = lambda *args, **kwargs: None
    obs_runtime.span = lambda stage: _INERT_SPAN
    try:
        yield
    finally:
        (
            obs_runtime.inc,
            obs_runtime.observe,
            obs_runtime.observe_batch_size,
            obs_runtime.set_gauge,
            obs_runtime.span,
        ) = saved


@pytest.fixture(scope="module")
def device():
    """A ready device on a compact eval-mode extractor (untrained: the
    timings exercise the same code paths regardless of weights)."""
    extractor_config = ExtractorConfig(embedding_dim=64, channels=(4, 8, 16))
    model = TwoBranchExtractor(extractor_config, num_classes=4, seed=0).eval()
    config = MandiPassConfig(
        extractor=extractor_config,
        security=SecurityConfig(template_dim=64, projected_dim=64, matrix_seed=2),
        inference=InferenceConfig(compute_dtype="float32"),
    )
    system = MandiPass(model, config=config)
    population = sample_population(4, 1, seed=3)
    recorder = Recorder(seed=4)
    system.enroll(
        "bench",
        [recorder.record(population[0], trial_index=i) for i in range(4)],
    )
    queue = []
    for i in range(BATCH):
        if i % 16 == 15:
            queue.append(np.zeros((210, 6)))  # refusals exercised too
        else:
            queue.append(
                recorder.record(population[i % len(population)], trial_index=10 + i)
            )
    return system, queue


def test_noop_overhead_within_budget(benchmark, device):
    system, queue = device
    run = lambda: system.verify_many("bench", queue)
    run()  # warm caches (workspaces, per-dtype casts) before any timing

    # Interleaved rounds: each round times all three variants
    # back-to-back, so clock-frequency drift between phases (several
    # percent on a busy host) cancels out of the best-of ratios.
    registry = obs_runtime.MetricsRegistry()
    base_time = noop_time = live_time = np.inf
    for _ in range(REPEATS):
        with _uninstrumented():
            base_time = min(base_time, _time_once(run))
        noop_time = min(noop_time, _time_once(run))
        with obs_runtime.collecting(registry):
            live_time = min(live_time, _time_once(run))
    with obs_runtime.collecting(registry):
        once(benchmark, run)
        snapshot = registry.to_dict()

    noop_ratio = noop_time / base_time
    live_ratio = live_time / base_time
    print()
    print(
        f"verify_many B={BATCH}: uninstrumented {base_time * 1e3:.2f} ms, "
        f"no-op {noop_time * 1e3:.2f} ms ({noop_ratio:.3f}x), "
        f"collecting {live_time * 1e3:.2f} ms ({live_ratio:.3f}x)"
    )

    SNAPSHOT_PATH.write_text(
        json.dumps(
            {
                "quick": QUICK,
                "timings": {
                    "batch": BATCH,
                    "uninstrumented_ms": base_time * 1e3,
                    "noop_ms": noop_time * 1e3,
                    "collecting_ms": live_time * 1e3,
                    "noop_overhead_ratio": noop_ratio,
                    "collecting_overhead_ratio": live_ratio,
                },
                "metrics": snapshot,
            },
            indent=2,
        )
        + "\n"
    )

    # The live run must actually have measured the serving path.
    histograms = snapshot["histograms"]
    for stage in ("onset", "outlier", "filter", "normalize", "frontend",
                  "extractor", "verify"):
        series = f'stage_latency_seconds{{stage="{stage}"}}'
        assert histograms[series]["count"] >= REPEATS, stage
    assert snapshot["counters"]['failures_total{error="OnsetNotFoundError"}'] > 0

    assert noop_ratio <= NOOP_BUDGET, (
        f"no-op instrumentation costs {noop_ratio:.3f}x "
        f"(budget {NOOP_BUDGET}x) over the uninstrumented baseline"
    )
    # Live collection is allowed real cost, but never pathological.
    assert live_ratio <= 2.0

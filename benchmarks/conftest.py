"""Shared fixtures for the benchmark suite.

Heavy artefacts -- the production extractor, the 34-user evaluation
campaign, per-user templates -- are session-scoped and disk-cached
(``.repro_cache``), so the first run trains once and later runs load.

Every benchmark prints the rows/series the paper reports and asserts the
*shape* of the result (orderings, rough factors, crossovers), not the
absolute numbers: the substrate is a simulator, not the authors'
testbed.  EXPERIMENTS.md records paper-vs-measured per experiment.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import ExtractorConfig, TrainingConfig
from repro.core.mandibleprint import extract_embeddings
from repro.core.similarity import center_embedding
from repro.core.training import train_extractor
from repro.datasets.cache import DatasetCache
from repro.datasets.splits import enrollment_probe_split
from repro.datasets.standard import (
    condition_spec,
    generate_hired_corpus,
    hired_spec,
    user_spec,
)
from repro.eval.metrics import equal_error_rate
from repro.eval.pairs import genuine_impostor_distances
from repro.eval.production import get_production_model
from repro.physio.conditions import RecordingCondition

# Scale used by the parameter-sweep benches (Figs. 11a/b/c, ablations):
# each sweep point trains its own extractor, so these stay small.
SWEEP_PEOPLE = 24
SWEEP_TRIALS = 10
SWEEP_EPOCHS = 10

ENROLL_TRIALS = 10


@pytest.fixture(scope="session")
def cache():
    return DatasetCache()


@pytest.fixture(scope="session")
def production_model(cache):
    """The VSP's shipped extractor (trained once, cached on disk)."""
    return get_production_model(cache=cache, epochs=25)


@pytest.fixture(scope="session")
def users(cache):
    """The 34-volunteer evaluation campaign (28 M / 6 F)."""
    return cache.get(user_spec(num_people=34, trials_per_person=30))


@pytest.fixture(scope="session")
def user_embeddings(production_model, users):
    """Centred MandiblePrints of every evaluation trial."""
    emb = center_embedding(extract_embeddings(production_model, users.features))
    return emb, users.labels


@pytest.fixture(scope="session")
def baseline_eer(user_embeddings):
    """The headline Fig. 10(b) numbers, reused by several benches."""
    emb, labels = user_embeddings
    genuine, impostor = genuine_impostor_distances(emb, labels)
    return equal_error_rate(genuine, impostor), genuine, impostor


@pytest.fixture(scope="session")
def operating_threshold(baseline_eer):
    """The calibrated decision threshold (the paper's 0.5485 analogue)."""
    return baseline_eer[0].threshold


@pytest.fixture(scope="session")
def enrolled(user_embeddings):
    """Per-user templates from ENROLL_TRIALS trials; probes from the rest.

    Returns ``(templates (34, d), probe_embeddings, probe_labels)``.
    """
    emb, labels = user_embeddings
    enroll_mask, probe_mask = enrollment_probe_split(labels, ENROLL_TRIALS, seed=0)
    templates = np.stack(
        [
            emb[enroll_mask & (labels == person)].mean(axis=0)
            for person in np.unique(labels)
        ]
    )
    return templates, emb[probe_mask], labels[probe_mask]


@pytest.fixture(scope="session")
def condition_embedder(production_model, cache):
    """Callable: condition -> (embeddings, labels) for the same 34 users."""

    def embed(condition: RecordingCondition, trials: int = 12):
        dataset = cache.get(condition_spec(condition, trials_per_person=trials))
        emb = center_embedding(
            extract_embeddings(production_model, dataset.features)
        )
        return emb, dataset.labels

    return embed


def train_sweep_model(
    cache: DatasetCache,
    extractor_config: ExtractorConfig | None = None,
    num_people: int = SWEEP_PEOPLE,
    trials: int = SWEEP_TRIALS,
    epochs: int = SWEEP_EPOCHS,
    max_axes: int = 6,
):
    """Train a reduced-scale extractor for one sweep point."""
    spec = dataclasses.replace(
        hired_spec(num_people=num_people, trials_per_person=trials),
        max_axes=max_axes,
    )
    corpus = cache.get(spec)
    model, _ = train_extractor(
        corpus.features,
        corpus.labels,
        extractor_config=extractor_config,
        training_config=TrainingConfig(epochs=epochs, batch_size=64, weight_decay=1e-4),
    )
    return model


def sweep_eer(
    cache: DatasetCache,
    model,
    max_axes: int = 6,
    num_people: int = 20,
    trials: int = 15,
):
    """EER of a sweep model on a reduced user campaign."""
    spec = dataclasses.replace(
        user_spec(num_people=num_people, trials_per_person=trials),
        max_axes=max_axes,
    )
    dataset = cache.get(spec)
    emb = center_embedding(extract_embeddings(model, dataset.features))
    genuine, impostor = genuine_impostor_distances(emb, dataset.labels)
    return equal_error_rate(genuine, impostor)


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)

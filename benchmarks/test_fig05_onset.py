"""Fig. 5: (a) window std jumps when vibration starts; (b) axes start at
different offset values.

The paper uses these observations to justify the std-threshold onset
rule (start > 250, sustain >= 100) and the min-max normalisation.
"""

import numpy as np

from repro.config import PreprocessConfig
from repro.dsp.detection import detect_onset, onset_metric
from repro.eval.reporting import render_series, render_table
from repro.imu import Recorder
from repro.physio import sample_population

from conftest import once


def test_fig05a_window_std_jump(benchmark):
    population = sample_population(8, 2, seed=0)
    recorder = Recorder(seed=0)
    config = PreprocessConfig()

    def run():
        pre_stds, post_stds = [], []
        metrics = None
        for person in population:
            recording = recorder.record(person, trial_index=1)
            metric = onset_metric(recording, config.onset_window)
            onset = detect_onset(recording, config)
            onset_window = onset // config.onset_window
            pre = metric[: max(onset_window, 1)]
            post = metric[onset_window:]
            pre_stds.append(float(np.median(pre)))
            post_stds.append(float(np.median(post)))
            metrics = metric
        return float(np.median(pre_stds)), float(np.median(post_stds)), metrics

    pre, post, example = once(benchmark, run)

    print()
    print(render_series(
        "Fig. 5(a) - per-window std of one recording",
        list(range(len(example))), [round(v, 1) for v in example],
        x_label="window", y_label="std",
    ))
    print(f"median silent-window std: {pre:.1f}; median voiced-window std: {post:.1f}")

    # Shape: the vibration raises the window std far past both paper
    # thresholds while silence stays far below the start threshold.
    assert pre < 100.0
    assert post > 250.0
    assert post > 10 * pre


def test_fig05b_axes_start_at_different_values(benchmark):
    population = sample_population(8, 2, seed=0)
    recorder = Recorder(seed=0)

    def run():
        recording = recorder.record(population[1], trial_index=0)
        return recording[:30].mean(axis=0)

    means = once(benchmark, run)
    print()
    print(render_table(
        ["axis", "start value (counts)"],
        [[name, round(float(value), 1)] for name, value in
         zip(("ax", "ay", "az", "gx", "gy", "gz"), means)],
        title="Fig. 5(b) - silent-lead-in per-axis offsets",
    ))
    # Shape: accelerometer axes carry distinct gravity-loaded offsets
    # spanning thousands of counts, which is why Eq. 7 normalisation is
    # needed before concatenation.
    accel = means[:3]
    assert np.ptp(accel) > 1000.0

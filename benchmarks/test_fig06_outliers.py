"""Fig. 6: the MAD algorithm finds glitch outliers and the two-sided
mean replacement restores the segment.

The paper demonstrates this on one spiked segment; we quantify it over
a population: detection recall on planted spikes, false-positive rate on
clean samples, and the RMS error of the restored segment.
"""

import numpy as np

from repro.dsp.outliers import mad_outlier_mask, replace_outliers
from repro.eval.reporting import render_table
from repro.imu import Recorder
from repro.physio import sample_population

from conftest import once


def test_fig06_mad_detection_and_replacement(benchmark):
    population = sample_population(8, 2, seed=0)
    recorder = Recorder(seed=0)
    rng = np.random.default_rng(7)

    def run():
        recalls, false_pos, rms_ratios = [], [], []
        for person in population:
            recording = recorder.record(person, trial_index=2)
            clean = recording[60:120, 2].astype(float)  # voiced az segment
            spiked = clean.copy()
            planted = rng.choice(clean.size, size=4, replace=False)
            # Glitches are 'extremely large or small values' (Section
            # IV): plant them at 8-15x the segment's own spread, the
            # regime the MAD rule exists for.
            magnitude = clean.std() * rng.uniform(8.0, 15.0, 4)
            spiked[planted] += rng.choice([-1, 1], 4) * magnitude
            mask = mad_outlier_mask(spiked)
            recalls.append(float(np.mean(mask[planted])))
            other = np.ones(clean.size, dtype=bool)
            other[planted] = False
            false_pos.append(float(np.mean(mask[other])))
            restored = replace_outliers(spiked, mask=mask)
            err = np.sqrt(np.mean((restored - clean) ** 2))
            base = np.sqrt(np.mean((spiked - clean) ** 2))
            rms_ratios.append(float(err / base))
        return (
            float(np.mean(recalls)),
            float(np.mean(false_pos)),
            float(np.mean(rms_ratios)),
        )

    recall, false_positive, rms_ratio = once(benchmark, run)

    print()
    print(render_table(
        ["metric", "value"],
        [
            ["spike recall", f"{recall:.3f}"],
            ["clean-sample false-positive rate", f"{false_positive:.3f}"],
            ["residual RMS / spiked RMS", f"{rms_ratio:.3f}"],
        ],
        title="Fig. 6 - MAD outlier processing",
    ))

    # Shape: the paper's claim is that 'all outliers are found' and the
    # replacement is effective.
    assert recall > 0.9
    assert false_positive < 0.15
    assert rms_ratio < 0.2

"""Device scalability and ear-side experiments (Section VII-A / VII-B).

Paper: MPU-9250 EER 1.28 % vs MPU-6050 1.29 % (no apparent difference);
left-ear VSR 98.02 % with right-ear enrollment data collection.
"""

import dataclasses

import numpy as np

from repro.core.mandibleprint import extract_embeddings
from repro.core.similarity import center_embedding
from repro.datasets.standard import user_spec
from repro.eval.distributions import genuine_distances_to_templates
from repro.eval.metrics import equal_error_rate
from repro.eval.pairs import genuine_impostor_distances
from repro.eval.reporting import render_table
from repro.imu import MPU6050
from repro.physio.conditions import RecordingCondition
from repro.types import EarSide

from conftest import once

PAPER = {"MPU-9250": 0.0128, "MPU-6050": 0.0129, "left_ear_vsr": 0.9802}


def test_device_scalability(benchmark, cache, production_model, baseline_eer):
    """Same pipeline, MPU-6050 sensors: EER should barely move."""
    eer_9250 = baseline_eer[0].eer

    def run():
        spec = dataclasses.replace(
            user_spec(num_people=34, trials_per_person=30), device=MPU6050
        )
        dataset = cache.get(spec)
        emb = center_embedding(extract_embeddings(production_model, dataset.features))
        genuine, impostor = genuine_impostor_distances(emb, dataset.labels)
        return equal_error_rate(genuine, impostor).eer

    eer_6050 = once(benchmark, run)

    print()
    print(render_table(
        ["device", "paper EER", "measured EER"],
        [
            ["MPU-9250", PAPER["MPU-9250"], round(eer_9250, 4)],
            ["MPU-6050", PAPER["MPU-6050"], round(eer_6050, 4)],
        ],
        title="Section VII-A - device scalability",
    ))

    # Shape: the noisier part degrades EER only slightly (paper: 0.01
    # percentage points; we allow a small absolute gap).
    assert abs(eer_6050 - eer_9250) < 0.03


def test_left_ear_vsr(benchmark, enrolled, condition_embedder, operating_threshold):
    """Right-ear enrollment, left-ear probes (Section VII-B)."""
    templates, _, _ = enrolled

    def run():
        emb, labels = condition_embedder(
            RecordingCondition(ear_side=EarSide.LEFT)
        )
        distances = genuine_distances_to_templates(emb, templates, labels)
        return float(np.mean(distances <= operating_threshold))

    vsr = once(benchmark, run)
    print()
    print(f"left-ear VSR: measured {vsr:.4f} (paper {PAPER['left_ear_vsr']})")

    # Shape: left-ear use remains feasible (paper: 98.02 %).
    assert vsr > 0.85

"""Fig. 10(a): the biometric extractor vs classical classifiers.

Paper: with 80 %/20 % splits over the 34 users, the extractor (BE)
reaches 90.54 % classification accuracy, ahead of SVM, NB, DT, KNN and
a plain NN.

On the synthetic substrate, closed-set classification of enrolled users
is easy for *any* strong classifier (simulated trials are more regular
than real ones), so the classification table alone cannot separate the
approaches the way the paper's data does.  This bench therefore reports
both views:

* the paper's classification protocol (BE must be in the leading pack
  and beat the paper's 90.54 % bar), and
* the verification comparison that motivates the deep pipeline: EER of
  each feature family on unseen-user pairs (BE clearly best; the
  paper's own gradient features, fed to classical metrics, collapse).
"""

import numpy as np

from repro.config import TrainingConfig
from repro.core.training import evaluate_classification, train_extractor
from repro.datasets.splits import per_person_split
from repro.eval.metrics import equal_error_rate
from repro.eval.pairs import genuine_impostor_distances
from repro.eval.reporting import render_table
from repro.ml import (
    DecisionTreeClassifier,
    GaussianNBClassifier,
    KNNClassifier,
    LinearSVMClassifier,
    MLPClassifier,
)

from conftest import once

PAPER_BE_ACCURACY = 0.9054


def test_fig10a_classifier_comparison(benchmark, cache, users, baseline_eer):
    import dataclasses

    from repro.datasets.standard import user_spec

    train_mask, test_mask = per_person_split(users.labels, 0.2, seed=0)
    flat = users.features.reshape(len(users), -1)
    be_eer = baseline_eer[0].eer

    def run():
        accuracies = {}
        classifiers = {
            "SVM": LinearSVMClassifier(epochs=15),
            "NB": GaussianNBClassifier(),
            "DT": DecisionTreeClassifier(max_depth=10),
            "KNN": KNNClassifier(k=5),
            "NN": MLPClassifier(epochs=40),
        }
        for name, clf in classifiers.items():
            clf.fit(flat[train_mask], users.labels[train_mask])
            accuracies[name] = clf.score(flat[test_mask], users.labels[test_mask])

        model, _ = train_extractor(
            users.features[train_mask],
            users.labels[train_mask],
            training_config=TrainingConfig(epochs=20, batch_size=64, weight_decay=1e-4),
        )
        accuracies["BE"] = evaluate_classification(
            model, users.features[test_mask], users.labels[test_mask]
        )

        # Verification view: EER per feature family on unseen-user pairs.
        gradient_users = cache.get(
            dataclasses.replace(
                user_spec(num_people=34, trials_per_person=30),
                frontend="gradient",
            )
        )
        grad_flat = gradient_users.features.reshape(len(gradient_users), -1)
        g, i = genuine_impostor_distances(grad_flat, gradient_users.labels)
        gradient_eer = equal_error_rate(g, i).eer
        return accuracies, gradient_eer

    accuracies, gradient_eer = once(benchmark, run)

    print()
    rows = [[name, f"{acc:.4f}"] for name, acc in accuracies.items()]
    rows.append(["BE (paper)", f"{PAPER_BE_ACCURACY:.4f}"])
    print(render_table(
        ["classifier", "accuracy"], rows,
        title="Fig. 10(a) - classification accuracy, 34 users, 80/20 split",
    ))
    print(render_table(
        ["feature family", "verification EER"],
        [
            ["paper gradient features + cosine", f"{gradient_eer:.4f}"],
            ["deep MandiblePrint (BE)", f"{be_eer:.4f}"],
        ],
        title="Fig. 10(a) companion - unseen-user verification",
    ))

    # Shape: the BE clears the paper's accuracy bar and sits in the
    # leading pack on the (substrate-easy) classification task ...
    best_classical = max(v for k, v in accuracies.items() if k != "BE")
    assert accuracies["BE"] > PAPER_BE_ACCURACY
    assert accuracies["BE"] > best_classical - 0.05
    # ... and is the only representation that survives the verification
    # task the system actually performs.
    assert be_eer < 0.3 * gradient_eer

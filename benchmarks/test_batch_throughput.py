"""Throughput of the batch-first inference path (PR: pipeline engine).

A verification server draining a queue of B=64 requests should not pay
64 separate pipeline walks: every dense stage — detection high-pass,
outlier replacement, segment filtering, the front end and the CNN
forward — is vectorised over the stacked batch.  This bench measures
the sequential ``verify`` loop against one ``verify_many`` call and
asserts (a) bitwise-identical accept/reject decisions, (b) np.allclose
distances, and (c) at least a 2x wall-clock speedup.
"""

import time

import numpy as np

from repro.config import ExtractorConfig, MandiPassConfig, SecurityConfig
from repro.core.system import MandiPass
from repro.imu import Recorder
from repro.physio import sample_population

from conftest import once, train_sweep_model

BATCH = 64


def _build_device(cache):
    extractor_config = ExtractorConfig(embedding_dim=64, channels=(4, 8, 16))
    model = train_sweep_model(cache, extractor_config=extractor_config, epochs=6)
    config = MandiPassConfig(
        extractor=extractor_config,
        security=SecurityConfig(template_dim=64, projected_dim=64, matrix_seed=3),
    )
    return MandiPass(model, config=config)


def _probe_batch(population, recorder):
    """B=64 queue: genuine, impostor and a sprinkle of dead requests."""
    batch = []
    for i in range(BATCH):
        if i % 16 == 7:
            batch.append(np.zeros((210, 6)))
        else:
            person = population[i % len(population)]
            batch.append(recorder.record(person, trial_index=100 + i))
    return batch


def _best_of(repeats, func):
    best, result = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batch_verify_throughput(benchmark, cache):
    device = _build_device(cache)
    population = sample_population(6, 1, seed=5)
    recorder = Recorder(seed=9)
    device.enroll(
        "queue-user",
        [recorder.record(population[0], trial_index=i) for i in range(5)],
    )
    batch = _probe_batch(population, recorder)

    # Register the batched call with pytest-benchmark, then take
    # matched best-of-2 wall-clock timings for the speedup ratio.
    batched2 = once(benchmark, lambda: device.verify_many("queue-user", batch))
    seq_time, sequential = _best_of(
        2, lambda: [device.verify("queue-user", rec) for rec in batch]
    )
    bat_time, batched = _best_of(2, lambda: device.verify_many("queue-user", batch))

    speedup = seq_time / bat_time
    print()
    print(
        f"B={BATCH}: sequential {seq_time * 1e3:.1f} ms, "
        f"batched {bat_time * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )

    assert len(batched) == len(sequential) == BATCH
    for one, many, again in zip(sequential, batched, batched2):
        assert many.accepted == one.accepted
        assert many.accepted == again.accepted
        assert np.allclose(many.distance, one.distance)
    rejected = sum(not r.accepted for r in batched)
    accepted = BATCH - rejected
    assert accepted > 0 and rejected > 0  # the queue genuinely mixes outcomes

    # The tentpole's acceptance bar: the batched path must at least
    # halve the wall clock of the request loop at B=64.
    assert speedup >= 2.0

"""Cardiac micro-vibration channel: generator, verifier, fused system.

Long-trial fixtures (3.6 s at 350 Hz) are module-scoped: each capture
synthesises several cardiac cycles through the full sensor model, so
the suite records once and reuses the pools.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import Recorder, sample_population
from repro.config import (
    FusionConfig,
    MandiPassConfig,
    SamplingConfig,
    SecurityConfig,
)
from repro.errors import (
    ConfigError,
    EnrollmentError,
    SignalError,
    VerificationError,
)
from repro.physio.heartbeat import (
    REJECTED_DISTANCE,
    CardiacProfile,
    HeartbeatGenerator,
    HeartbeatVerifier,
)

SAMPLING = SamplingConfig(duration_s=3.6, utterance_s=0.45)


def _acquired_probe(verifier, recorder, person, start):
    """First probe from ``start`` whose heartbeat actually acquires.

    Acquisition refuses on ~15% of 3.6 s trials (too few clean beats in
    the unmasked tail), so single-trial tests would be flaky.
    """
    for trial in range(start, start + 12):
        probe = recorder.record(person, trial_index=trial)
        try:
            verifier.beat_features(probe)
        except SignalError:
            continue
        return probe
    raise AssertionError("no trial acquired a heartbeat")


@pytest.fixture(scope="module")
def people():
    return sample_population(3, 1, seed=21)


@pytest.fixture(scope="module")
def hb_recorder():
    return Recorder(sampling=SAMPLING, seed=5, heartbeat=True)


@pytest.fixture(scope="module")
def fitted_verifier(people, hb_recorder):
    verifier = HeartbeatVerifier(rate_hz=SAMPLING.rate_hz)
    for person in people:
        verifier.fit(
            person.person_id,
            [hb_recorder.record(person, trial_index=i) for i in range(4)],
        )
    return verifier


class TestCardiacProfile:
    def test_from_person_deterministic(self, people):
        a = CardiacProfile.from_person(people[0])
        b = CardiacProfile.from_person(people[0])
        assert a.rest_rate_bpm == b.rest_rate_bpm
        assert a.s1_freq_hz == b.s1_freq_hz
        np.testing.assert_array_equal(a.coupling, b.coupling)
        np.testing.assert_array_equal(a.gyro_coupling, b.gyro_coupling)

    def test_distinct_people_distinct_hearts(self, people):
        a = CardiacProfile.from_person(people[0])
        b = CardiacProfile.from_person(people[1])
        assert a.s1_freq_hz != b.s1_freq_hz
        assert a.rest_rate_bpm != b.rest_rate_bpm

    def test_coupling_vectors_well_formed(self, people):
        cardiac = CardiacProfile.from_person(people[0])
        assert cardiac.coupling.shape == (3,)
        assert cardiac.gyro_coupling.shape == (3,)
        assert np.isfinite(cardiac.coupling).all()
        assert np.linalg.norm(cardiac.coupling) > 0.0

    def test_rest_rate_in_physiological_band(self, people):
        for person in people:
            cardiac = CardiacProfile.from_person(person)
            assert 54.0 <= cardiac.rest_rate_bpm <= 86.0

    def test_rejects_out_of_range_rate(self, people):
        cardiac = CardiacProfile.from_person(people[0])
        with pytest.raises(ConfigError):
            dataclasses.replace(cardiac, rest_rate_bpm=300.0)


class TestHeartbeatGenerator:
    def test_beat_kernel_unit_peak(self, people):
        gen = HeartbeatGenerator()
        kernel = gen.beat_kernel(CardiacProfile.from_person(people[0]), 350.0)
        assert np.max(np.abs(kernel)) == pytest.approx(1.0)

    def test_path_gain_attenuates(self):
        assert 0.0 < HeartbeatGenerator().path_gain() < 1.0

    def test_synthesize_shape_and_units(self, people):
        gen = HeartbeatGenerator()
        out = gen.synthesize(
            people[0], None, 1024, 350.0, np.random.default_rng(0)
        )
        assert out.shape == (1024, 6)
        # Micro-vibration: well under 1 m/s^2 at the ear.
        assert 0.0 < np.abs(out[:, :3]).max() < 0.5

    def test_counts_scale_by_device(self, people, hb_recorder):
        gen = HeartbeatGenerator()
        phys = gen.synthesize(
            people[0], None, 512, 350.0, np.random.default_rng(3)
        )
        counts = gen.counts(
            people[0], None, 512, 350.0, hb_recorder.device,
            np.random.default_rng(3),
        )
        np.testing.assert_allclose(
            counts[:, :3], phys[:, :3] * hb_recorder.device.accel_sensitivity
        )

    def test_rejects_bad_args(self, people):
        with pytest.raises(ConfigError):
            HeartbeatGenerator(heart_to_ear_m=0.0)
        with pytest.raises(ConfigError):
            HeartbeatGenerator().synthesize(
                people[0], None, 0, 350.0, np.random.default_rng(0)
            )


class TestHeartbeatVerifier:
    def test_genuine_closer_than_impostor(
        self, people, hb_recorder, fitted_verifier
    ):
        genuine, impostor = [], []
        for person in people:
            for trial in range(3):
                probe = hb_recorder.record(person, trial_index=50 + trial)
                try:
                    features = fitted_verifier.beat_features(probe)
                except SignalError:
                    continue
                for other in people:
                    d = fitted_verifier.score_features(
                        other.person_id, features
                    )
                    (genuine if other is person else impostor).append(d)
        assert genuine and impostor
        assert np.mean(genuine) < np.mean(impostor) - 0.1

    def test_verify_accepts_genuine(self, people, hb_recorder, fitted_verifier):
        accepted = 0
        for trial in range(3):
            probe = hb_recorder.record(people[0], trial_index=70 + trial)
            result = fitted_verifier.verify(people[0].person_id, probe)
            accepted += result.accepted
        assert accepted >= 1

    def test_verify_refuses_heartbeat_free_signal(self, people, fitted_verifier):
        silent = np.zeros((SAMPLING.num_samples, 6))
        result = fitted_verifier.verify(people[0].person_id, silent)
        assert result.exit_stage == "refused"
        assert not result.accepted
        assert result.distance == REJECTED_DISTANCE

    def test_score_features_matches_score(
        self, people, hb_recorder, fitted_verifier
    ):
        probe = _acquired_probe(fitted_verifier, hb_recorder, people[0], 90)
        direct = fitted_verifier.score(people[0].person_id, probe)
        via_features = fitted_verifier.score_features(
            people[0].person_id, fitted_verifier.beat_features(probe)
        )
        assert direct == via_features

    def test_unknown_user_raises(self, fitted_verifier, people, hb_recorder):
        probe = hb_recorder.record(people[0], trial_index=91)
        with pytest.raises(VerificationError):
            fitted_verifier.verify("nobody", probe)

    def test_drop_user_forgets_template(self, people, hb_recorder):
        verifier = HeartbeatVerifier(rate_hz=SAMPLING.rate_hz)
        verifier.fit(
            people[0].person_id,
            [hb_recorder.record(people[0], trial_index=i) for i in range(3)],
        )
        assert verifier.has_user(people[0].person_id)
        verifier.drop_user(people[0].person_id)
        assert not verifier.has_user(people[0].person_id)

    def test_enrollment_without_heartbeat_raises(self, people):
        verifier = HeartbeatVerifier(rate_hz=SAMPLING.rate_hz)
        silent = [np.zeros((SAMPLING.num_samples, 6)) for _ in range(3)]
        with pytest.raises(EnrollmentError):
            verifier.fit(people[0].person_id, silent)

    def test_z_scoring_mode(self, people, hb_recorder):
        verifier = HeartbeatVerifier(rate_hz=SAMPLING.rate_hz, scoring="z")
        verifier.fit(
            people[0].person_id,
            [hb_recorder.record(people[0], trial_index=i) for i in range(4)],
        )
        probe = _acquired_probe(verifier, hb_recorder, people[0], 95)
        d = verifier.score(people[0].person_id, probe)
        assert 0.0 <= d < 2.0


class TestRecorderHeartbeatChannel:
    def test_disabled_recorder_is_bitwise_unchanged(self, people):
        """The heartbeat knob must not perturb historical recordings."""
        plain = Recorder(sampling=SAMPLING, seed=5)
        off = Recorder(sampling=SAMPLING, seed=5, heartbeat=False)
        np.testing.assert_array_equal(
            plain.record(people[0], trial_index=0),
            off.record(people[0], trial_index=0),
        )

    def test_enabled_recorder_differs_but_is_deterministic(self, people):
        a = Recorder(sampling=SAMPLING, seed=5, heartbeat=True)
        b = Recorder(sampling=SAMPLING, seed=5, heartbeat=True)
        plain = Recorder(sampling=SAMPLING, seed=5)
        first = a.record(people[0], trial_index=0)
        np.testing.assert_array_equal(first, b.record(people[0], trial_index=0))
        assert not np.array_equal(first, plain.record(people[0], trial_index=0))

    def test_session_carries_heartbeat_per_trial(self, people):
        on = Recorder(sampling=SAMPLING, seed=5, heartbeat=True)
        off = Recorder(sampling=SAMPLING, seed=5)
        with_hb = on.record_session(people[0], num_trials=2)
        without = off.record_session(people[0], num_trials=2)
        assert with_hb.shape == without.shape
        assert not np.array_equal(with_hb[0], without[0])
        assert not np.array_equal(with_hb[1], without[1])


class TestFusedSystem:
    @pytest.fixture(scope="class")
    def fused_system(self, trained_model, people, hb_recorder):
        from repro.core.system import MandiPass

        config = MandiPassConfig(
            sampling=SAMPLING,
            extractor=trained_model.config,
            security=SecurityConfig(
                template_dim=trained_model.config.embedding_dim,
                projected_dim=trained_model.config.embedding_dim,
                matrix_seed=7,
            ),
            fusion=FusionConfig(enabled=True),
        )
        system = MandiPass(trained_model, config=config)
        for person in people:
            recordings = [
                hb_recorder.record(person, trial_index=i) for i in range(4)
            ]
            system.enroll(person.person_id, recordings)
        return system

    def test_no_template_parity_with_verify(
        self, fused_system, people, hb_recorder
    ):
        """Without a heartbeat template, verify_fused IS verify."""
        probe = hb_recorder.record(people[0], trial_index=60)
        fused = fused_system.verify_fused(people[0].person_id, probe)
        plain = fused_system.verify(people[0].person_id, probe)
        assert fused == plain

    def test_fused_verification_round_trip(
        self, fused_system, people, hb_recorder
    ):
        user = people[0].person_id
        enrolled = fused_system.enroll_heartbeat(
            user,
            [hb_recorder.record(people[0], trial_index=i) for i in range(4)],
        )
        assert enrolled >= 1
        assert fused_system.has_heartbeat_template(user)
        probe = _acquired_probe(
            fused_system.heartbeat_verifier, hb_recorder, people[0], 61
        )
        fused = fused_system.verify_fused(user, probe)
        assert fused.threshold == 1.0
        assert fused.accepted
        impostor_probe = hb_recorder.record(people[1], trial_index=61)
        assert not fused_system.verify_fused(user, impostor_probe).accepted

    def test_refused_heartbeat_falls_back_to_imu(
        self, fused_system, people, hb_recorder, rng
    ):
        """A probe with cardiac signal destroyed still gets an IMU-only
        decision, flagged degraded (DESIGN.md §4l refusal semantics)."""
        user = people[0].person_id
        if not fused_system.has_heartbeat_template(user):
            fused_system.enroll_heartbeat(
                user,
                [hb_recorder.record(people[0], trial_index=i) for i in range(4)],
            )
        probe = hb_recorder.record(people[0], trial_index=62).copy()
        # Crush the quiet tail the cardiac verifier needs; the 'EMM'
        # burst near the onset stays intact for the IMU pipeline.
        probe[SAMPLING.num_samples // 2 :] = 0.0
        fused = fused_system.verify_fused(user, probe)
        imu = fused_system.verify(user, probe)
        assert fused.degraded
        assert fused.distance == imu.distance

    def test_revoke_drops_heartbeat_template(
        self, fused_system, people, hb_recorder
    ):
        user = people[2].person_id
        fused_system.enroll_heartbeat(
            user,
            [hb_recorder.record(people[2], trial_index=i) for i in range(4)],
        )
        assert fused_system.has_heartbeat_template(user)
        fused_system.revoke(user)
        assert not fused_system.has_heartbeat_template(user)

    def test_enroll_heartbeat_requires_fusion_enabled(
        self, trained_model, people, hb_recorder
    ):
        from repro.core.system import MandiPass

        config = MandiPassConfig(
            sampling=SAMPLING,
            extractor=trained_model.config,
            security=SecurityConfig(
                template_dim=trained_model.config.embedding_dim,
                projected_dim=trained_model.config.embedding_dim,
                matrix_seed=7,
            ),
        )
        system = MandiPass(trained_model, config=config)
        with pytest.raises(ConfigError):
            system.enroll_heartbeat(
                people[0].person_id,
                [hb_recorder.record(people[0], trial_index=0)],
            )

"""IMU device profile and noise generator tests."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.imu import IDEAL_IMU, MPU6050, MPU9250
from repro.imu import noise as imu_noise
from repro.imu.device import IMUDevice


class TestDeviceProfiles:
    def test_mpu9250_sensitivity_is_8192_per_g(self):
        assert MPU9250.gravity_counts == pytest.approx(8192.0)

    def test_mpu6050_noisier_than_mpu9250(self):
        assert MPU6050.accel_noise_counts > MPU9250.accel_noise_counts
        assert MPU6050.spike_probability > MPU9250.spike_probability

    def test_ideal_device_is_noise_free(self):
        assert IDEAL_IMU.accel_noise_counts == 0.0
        assert IDEAL_IMU.spike_probability == 0.0
        assert not IDEAL_IMU.quantize

    def test_rejects_negative_sensitivity(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(MPU9250, accel_sensitivity=-1.0)

    def test_rejects_excessive_spike_probability(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(MPU9250, spike_probability=0.5)


class TestWhiteNoise:
    def test_zero_std_is_exact_zero(self, rng):
        assert np.all(imu_noise.white_noise((100, 3), 0.0, rng) == 0.0)

    def test_std_matches(self, rng):
        noise = imu_noise.white_noise((100_000,), 5.0, rng)
        assert noise.std() == pytest.approx(5.0, rel=0.02)

    def test_rejects_negative_std(self, rng):
        with pytest.raises(ConfigError):
            imu_noise.white_noise((10,), -1.0, rng)


class TestBiasWalk:
    def test_walk_grows_with_time(self, rng):
        walk = imu_noise.bias_random_walk(100_000, 1, 0.1, rng)
        early = np.abs(walk[:1000]).mean()
        late = np.abs(walk[-1000:]).mean()
        assert late > early

    def test_shape(self, rng):
        assert imu_noise.bias_random_walk(50, 3, 0.1, rng).shape == (50, 3)

    def test_zero_step_is_flat(self, rng):
        assert np.all(imu_noise.bias_random_walk(50, 3, 0.0, rng) == 0.0)


class TestStaticBias:
    def test_within_bounds(self, rng):
        bias = imu_noise.static_bias(1000, 60.0, rng)
        assert np.all(np.abs(bias) <= 60.0)

    def test_rejects_negative(self, rng):
        with pytest.raises(ConfigError):
            imu_noise.static_bias(3, -1.0, rng)


class TestSpikes:
    def test_zero_probability_returns_copy(self, rng):
        data = np.zeros((100, 6))
        out = imu_noise.inject_spikes(data, 0.0, 900.0, rng)
        assert np.all(out == 0.0)
        assert out is not data

    def test_spikes_are_large(self, rng):
        data = np.zeros((10_000, 6))
        out = imu_noise.inject_spikes(data, 0.01, 900.0, rng)
        spikes = out[out != 0.0]
        assert spikes.size > 0
        assert np.abs(spikes).min() > 300.0

    def test_spike_rate_matches_probability(self, rng):
        data = np.zeros((50_000, 6))
        out = imu_noise.inject_spikes(data, 0.004, 900.0, rng)
        rate = np.mean(out != 0.0)
        assert rate == pytest.approx(0.004, rel=0.2)

    def test_rejects_1d(self, rng):
        with pytest.raises(ShapeError):
            imu_noise.inject_spikes(np.zeros(10), 0.1, 100.0, rng)


class TestQuantizeSaturate:
    def test_quantize_rounds(self):
        out = imu_noise.quantize(np.array([1.4, 1.5, -2.7]))
        np.testing.assert_array_equal(out, [1.0, 2.0, -3.0])

    def test_saturate_clips_symmetric_word(self):
        out = imu_noise.saturate(np.array([40_000.0, -40_000.0, 5.0]), 32767)
        np.testing.assert_array_equal(out, [32767.0, -32768.0, 5.0])

    def test_saturate_rejects_bad_full_scale(self):
        with pytest.raises(ConfigError):
            imu_noise.saturate(np.zeros(3), 0)

"""Spectral helpers and the full preprocessing pipeline."""

import numpy as np
import pytest

from repro.config import PreprocessConfig
from repro.dsp.pipeline import Preprocessor
from repro.dsp.spectral import (
    band_energy,
    band_energy_ratio,
    dominant_frequency,
    hann_window,
    periodogram,
    spectral_centroid,
)
from repro.errors import ConfigError, OnsetNotFoundError, ShapeError

FS = 350.0


class TestSpectral:
    def test_hann_endpoints(self):
        win = hann_window(64)
        assert win[0] == pytest.approx(0.0)
        assert win.max() <= 1.0

    def test_periodogram_parseval(self, rng):
        """Total PSD mass times bin width ~ signal variance."""
        x = rng.normal(0.0, 2.0, size=4096)
        freqs, psd = periodogram(x, FS, window=False)
        df = freqs[1] - freqs[0]
        assert np.sum(psd) * df == pytest.approx(np.var(x) + np.mean(x) ** 2, rel=0.05)

    def test_dominant_frequency_of_tone(self):
        t = np.arange(2048) / FS
        tone = np.sin(2 * np.pi * 60.0 * t)
        assert dominant_frequency(tone, FS) == pytest.approx(60.0, abs=1.0)

    def test_band_energy_concentrated_at_tone(self):
        t = np.arange(2048) / FS
        tone = np.sin(2 * np.pi * 60.0 * t)
        inside = band_energy(tone, FS, 55.0, 65.0)
        outside = band_energy(tone, FS, 100.0, 170.0)
        assert inside > 100 * outside

    def test_band_energy_ratio_low_tone(self):
        t = np.arange(2048) / FS
        assert band_energy_ratio(np.sin(2 * np.pi * 5.0 * t), FS, 20.0) > 0.95

    def test_spectral_centroid_between_tones(self):
        t = np.arange(4096) / FS
        x = np.sin(2 * np.pi * 40.0 * t) + np.sin(2 * np.pi * 120.0 * t)
        centroid = spectral_centroid(x, FS)
        assert 60.0 < centroid < 100.0

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            periodogram(np.array([]), FS)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            periodogram(np.zeros(16), -1.0)

    def test_rejects_bad_band(self):
        with pytest.raises(ConfigError):
            band_energy(np.zeros(16), FS, 50.0, 40.0)


class TestPreprocessor:
    def test_output_shape_and_range(self, recording):
        out = Preprocessor().process(recording)
        assert out.shape == (6, 60)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_silence_rejected(self):
        with pytest.raises(OnsetNotFoundError):
            Preprocessor().process(np.zeros((210, 6)))

    def test_debug_stages_coherent(self, recording):
        debug = Preprocessor().process_debug(recording)
        assert debug.raw_segments.shape == (6, 60)
        assert debug.despiked.shape == (6, 60)
        assert debug.filtered.shape == (6, 60)
        np.testing.assert_array_equal(debug.normalized, Preprocessor().process(recording))

    def test_highpass_removes_gravity_offset(self, recording):
        debug = Preprocessor().process_debug(recording)
        raw_mean = np.abs(debug.raw_segments.mean(axis=1)).max()
        # Steady-state mean of the filtered tail should be far below the
        # gravity-loaded raw offset.
        filtered_mean = np.abs(debug.filtered[:, 30:].mean(axis=1)).max()
        assert filtered_mean < 0.05 * raw_mean

    def test_deterministic(self, recording):
        a = Preprocessor().process(recording)
        b = Preprocessor().process(recording)
        np.testing.assert_array_equal(a, b)

    def test_custom_segment_length(self, recording):
        cfg = PreprocessConfig(segment_length=40)
        assert Preprocessor(cfg).process(recording).shape == (6, 40)

    def test_batch_drops_undetectable(self, recording):
        batch = np.stack([recording, np.zeros_like(recording)])
        out = Preprocessor().process_batch(batch)
        assert out.shape == (1, 6, 60)

    def test_batch_all_silent_returns_empty(self):
        out = Preprocessor().process_batch(np.zeros((2, 210, 6)))
        assert out.shape == (0, 6, 60)

    def test_despiking_changes_spiked_recording(self, recording, rng):
        spiked = recording.copy()
        debug_clean = Preprocessor().process_debug(recording)
        onset = debug_clean.onset
        spiked[onset + 30 : onset + 33, 2] += 20000.0
        debug = Preprocessor().process_debug(spiked)
        # The spikes were replaced somewhere in the az segment.
        assert np.any(debug.raw_segments[2] != debug.despiked[2])
        # And the despiked segment no longer contains the huge values.
        assert np.abs(debug.despiked[2]).max() < np.abs(debug.raw_segments[2]).max()

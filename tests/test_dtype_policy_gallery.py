"""Float32 inference parity and one-matmul gallery identification.

The compute-dtype policy promises: training stays float64, float32 is
an inference-only fast path whose embedding drift is bounded and whose
accept/reject decisions match float64 on the synthetic population.  The
``TemplateGallery`` promises: one matmul + one einsum reproduce the
per-user identify loop user-for-user and distance-for-distance.
"""

import numpy as np
import pytest

from repro import MandiPass, Recorder
from repro.config import InferenceConfig, MandiPassConfig, SecurityConfig
from repro.core.engine import InferenceEngine
from repro.core.gallery import TemplateGallery
from repro.core.similarity import cosine_distance
from repro.errors import ConfigError, ShapeError
from repro.nn import BatchNorm2d, Conv2d, Linear
from repro.security.cancelable import CancelableTransform


def _device(trained_model, dtype, seed=11):
    config = MandiPassConfig(
        extractor=trained_model.config,
        security=SecurityConfig(
            template_dim=trained_model.config.embedding_dim,
            projected_dim=trained_model.config.embedding_dim,
            matrix_seed=seed,
        ),
        inference=InferenceConfig(compute_dtype=dtype),
    )
    return MandiPass(trained_model, config=config)


@pytest.fixture(scope="module")
def probe_queue(population, recorder):
    """Genuine, impostor and dead probes — a realistic verify queue."""
    queue = [np.zeros((210, 6))]
    for trial in range(60, 66):
        queue.append(recorder.record(population[1], trial_index=trial))
    for person in (2, 3, 5, 7):
        queue.append(recorder.record(population[person], trial_index=9))
    return queue


class TestDtypePolicy:
    def test_config_rejects_unknown_dtype(self):
        with pytest.raises(ConfigError):
            InferenceConfig(compute_dtype="float16")
        with pytest.raises(ConfigError):
            InferenceEngine(model=None, compute_dtype="int8")

    def test_float32_embedding_drift_bounded(self, trained_model, hired_dataset):
        features = hired_dataset.features[:16]
        emb64 = InferenceEngine(trained_model, compute_dtype="float64").embed_features(
            features
        )
        emb32 = InferenceEngine(trained_model, compute_dtype="float32").embed_features(
            features
        )
        # Embeddings live in (-0.5, 0.5) after centring; float32 keeps
        # them within a few 1e-6 of the float64 forward.
        assert np.max(np.abs(emb64 - emb32)) < 1e-4
        # Both come back float64 after centring (decisions stay float64).
        assert emb64.dtype == emb32.dtype == np.float64

    def test_decision_parity_on_population(
        self, trained_model, population, recorder, probe_queue
    ):
        enrollment = [recorder.record(population[1], trial_index=i) for i in range(5)]
        dev64 = _device(trained_model, "float64")
        dev32 = _device(trained_model, "float32")
        dev64.enroll("parity", enrollment)
        dev32.enroll("parity", enrollment)
        res64 = dev64.verify_many("parity", probe_queue)
        res32 = dev32.verify_many("parity", probe_queue)
        assert [r.accepted for r in res64] == [r.accepted for r in res32]
        for a, b in zip(res64, res32):
            assert a.distance == pytest.approx(b.distance, abs=1e-4)
        # The queue genuinely mixes accepts and rejects.
        outcomes = {r.accepted for r in res64}
        assert outcomes == {True, False}

    def test_eval_forward_follows_input_dtype(self, trained_model, hired_dataset):
        trained_model.eval()
        feats32 = np.asarray(hired_dataset.features[:2], dtype=np.float32)
        assert trained_model.embed(feats32).dtype == np.float32
        feats64 = np.asarray(hired_dataset.features[:2], dtype=np.float64)
        assert trained_model.embed(feats64).dtype == np.float64

    def test_training_forward_promotes_to_float64(self, rng):
        conv = Conv2d(1, 2, (3, 3), (1, 1), (1, 1), rng=rng)
        conv.train()
        out = conv(rng.normal(size=(1, 1, 4, 4)).astype(np.float32))
        assert out.dtype == np.float64


class TestEvalCaches:
    def test_batchnorm_folding_matches_formula(self, rng):
        bn = BatchNorm2d(3)
        for _ in range(5):
            bn(rng.normal(2.0, 3.0, size=(8, 3, 4, 5)))
        bn.eval()
        x = rng.normal(2.0, 3.0, size=(4, 3, 4, 5))
        std = np.sqrt(bn.running_var + bn.eps)
        expected = (
            bn.gamma.data[None, :, None, None]
            * (x - bn.running_mean[None, :, None, None])
            / std[None, :, None, None]
            + bn.beta.data[None, :, None, None]
        )
        np.testing.assert_allclose(bn(x), expected, rtol=1e-12, atol=1e-12)

    def test_caches_invalidate_on_train_eval_transition(self, rng):
        bn = BatchNorm2d(2)
        bn(rng.normal(size=(4, 2, 3, 3)))
        bn.eval()
        x = rng.normal(size=(2, 2, 3, 3))
        before = bn(x)
        # Parameter steps happen in train mode; re-entering eval must
        # rebuild the folded affine.
        bn.train()
        bn.gamma.data *= 2.0
        bn.eval()
        after = bn(x)
        assert not np.allclose(before, after)

    def test_load_state_invalidates_cast_cache(self, rng):
        lin = Linear(4, 3, rng=rng)
        lin.eval()
        x32 = rng.normal(size=(2, 4)).astype(np.float32)
        before = lin(x32)
        state = {k: v * 2.0 for k, v in lin.state_dict().items()}
        lin.load_state(state)
        after = lin(x32)
        assert not np.allclose(before, after)


def _identify_loop(device, embedding):
    """The historical per-user identify loop, kept as the oracle."""
    best = None
    for user_id, transform in device._transforms.items():
        record = device.enclave.unseal(user_id)
        probe = transform.apply(embedding)
        distance = cosine_distance(probe, np.asarray(record.template))
        if best is None or distance < best[1]:
            best = (user_id, distance)
    return best


@pytest.fixture(scope="module")
def gallery_device(trained_model, population):
    device = _device(trained_model, "float64", seed=41)
    recorder = Recorder(seed=17)
    users = {"ga": population[0], "gb": population[3], "gc": population[5]}
    for name, person in users.items():
        device.enroll(name, [recorder.record(person, trial_index=i) for i in range(5)])
    return device, users, recorder


class TestTemplateGallery:
    def test_matches_per_user_loop(self, gallery_device):
        device, users, recorder = gallery_device
        for name, person in users.items():
            embedding = device.engine.embed_one(
                recorder.record(person, trial_index=70)
            )
            loop_user, loop_distance = _identify_loop(device, embedding)
            result = device.identify(recorder.record(person, trial_index=70))
            assert result is not None
            assert result.user_id == loop_user == name
            assert result.distance == pytest.approx(loop_distance, abs=1e-10)

    def test_identify_many_matches_identify(self, gallery_device, population):
        device, users, recorder = gallery_device
        queue = [
            recorder.record(users["ga"], trial_index=71),
            np.zeros((210, 6)),
            recorder.record(users["gc"], trial_index=72),
            recorder.record(population[7], trial_index=3),
        ]
        many = device.identify_many(queue)
        assert len(many) == len(queue)
        assert many[1] is None
        for got, recording in zip(many, queue):
            one = device.identify(recording)
            if one is None:
                assert got is None
            else:
                assert got.user_id == one.user_id
                assert got.distance == pytest.approx(one.distance, abs=1e-10)

    def test_gallery_invalidated_by_adapt(self, gallery_device):
        device, users, recorder = gallery_device
        probe = recorder.record(users["gb"], trial_index=80)
        before = device.identify(probe)
        assert device.adapt_template("gb", recorder.record(users["gb"], trial_index=81))
        after = device.identify(probe)
        assert before is not None and after is not None
        assert after.user_id == "gb"
        # The sealed template moved, so the scored distance moved too.
        assert after.distance != pytest.approx(before.distance, abs=1e-12)

    def test_gallery_invalidated_by_revoke_and_renew(
        self, trained_model, population
    ):
        device = _device(trained_model, "float64", seed=43)
        recorder = Recorder(seed=29)
        for name, person in (("ra", population[2]), ("rb", population[6])):
            device.enroll(
                name, [recorder.record(person, trial_index=i) for i in range(4)]
            )
        probe = recorder.record(population[2], trial_index=50)
        assert device.identify(probe).user_id == "ra"
        device.revoke("ra")
        result = device.identify(probe)
        assert result is None or result.user_id != "ra"
        device.renew(
            "ra", [recorder.record(population[2], trial_index=i) for i in range(4, 8)]
        )
        assert device.identify(probe).user_id == "ra"

    def test_empty_gallery_rejected(self):
        with pytest.raises(ShapeError):
            TemplateGallery(user_ids=[], matrices=[], templates=[])

    def test_zero_probe_and_zero_template_are_maximally_distant(self):
        transforms = [CancelableTransform(8, seed=s) for s in (1, 2)]
        templates = [np.ones(8), np.zeros(8)]
        gallery = TemplateGallery(
            user_ids=["u0", "u1"],
            matrices=[t.matrix for t in transforms],
            templates=templates,
        )
        distances = gallery.distances(np.zeros(8))
        np.testing.assert_allclose(distances, [1.0, 1.0])
        # Nonzero probe against the zero template: still the neutral 1.0.
        assert gallery.distances(np.ones(8))[1] == pytest.approx(1.0)

    def test_batch_scoring_equals_rowwise(self, rng):
        transforms = [CancelableTransform(16, seed=s) for s in range(5)]
        templates = [rng.normal(size=16) for _ in range(5)]
        gallery = TemplateGallery(
            user_ids=[f"u{i}" for i in range(5)],
            matrices=[t.matrix for t in transforms],
            templates=templates,
        )
        probes = rng.normal(size=(7, 16))
        batch = gallery.distances_batch(probes)
        assert batch.shape == (7, 5)
        for row, probe in enumerate(probes):
            np.testing.assert_allclose(batch[row], gallery.distances(probe))
            for col, transform in enumerate(transforms):
                expected = cosine_distance(transform.apply(probe), templates[col])
                assert batch[row, col] == pytest.approx(expected, abs=1e-10)

"""Front-end and two-branch extractor tests."""

import numpy as np
import pytest

from repro.config import ExtractorConfig
from repro.core.extractor import TwoBranchExtractor
from repro.core.frontend import (
    FRONTEND_KINDS,
    GradientFrontEnd,
    RectifiedSpectralFrontEnd,
    make_frontend,
)
from repro.errors import ConfigError, ShapeError
from repro.nn.gradcheck import check_layer_input_grad


class TestRectifiedSpectralFrontEnd:
    def test_shape(self, rng):
        fe = RectifiedSpectralFrontEnd()
        out = fe.transform(rng.uniform(size=(6, 60)))
        assert out.shape == (2, 6, 31)
        assert fe.width(60) == 31

    def test_nonnegative(self, rng):
        out = RectifiedSpectralFrontEnd().transform(rng.uniform(size=(6, 60)))
        assert np.all(out >= 0.0)

    def test_shift_insensitive(self, rng):
        """Magnitude spectra barely change under a circular time shift."""
        fe = RectifiedSpectralFrontEnd()
        signal = rng.uniform(size=(6, 60))
        shifted = np.roll(signal, 3, axis=1)
        a, b = fe.transform(signal), fe.transform(shifted)
        cos = np.sum(a * b) / (np.linalg.norm(a) * np.linalg.norm(b))
        assert cos > 0.97

    def test_direction_planes_differ_for_asymmetric_signal(self):
        t = np.linspace(0, 4 * np.pi, 60)
        asym = np.tile(np.where(np.sin(t) > 0, np.sin(t), 0.3 * np.sin(t)), (6, 1))
        out = RectifiedSpectralFrontEnd().transform(asym)
        assert not np.allclose(out[0], out[1])

    def test_rejects_bad_power(self):
        with pytest.raises(ConfigError):
            RectifiedSpectralFrontEnd(power=0.0)


class TestGradientFrontEnd:
    def test_temporal_shape(self, rng):
        fe = GradientFrontEnd("temporal")
        out = fe.transform(rng.uniform(size=(6, 60)))
        assert out.shape == (2, 6, 30)
        assert fe.width(60) == 30

    def test_positive_plane_nonnegative(self, rng):
        out = GradientFrontEnd("temporal").transform(rng.uniform(size=(6, 60)))
        assert np.all(out[0] >= 0.0)
        assert np.all(out[1] <= 0.0)

    def test_sorted_is_permutation_invariant_per_direction(self, rng):
        fe = GradientFrontEnd("sorted")
        signal = rng.uniform(size=(6, 60))
        out = fe.transform(signal)
        assert np.all(np.diff(out[0], axis=1) <= 1e-12)  # descending magnitudes
        assert np.all(np.diff(out[1], axis=1) >= -1e-12)  # ascending (most negative first)

    def test_rejects_unknown_order(self):
        with pytest.raises(ConfigError):
            GradientFrontEnd("shuffled")


class TestFactory:
    @pytest.mark.parametrize("kind", FRONTEND_KINDS)
    def test_known_kinds(self, kind, rng):
        fe = make_frontend(kind)
        out = fe.transform(rng.uniform(size=(6, 60)))
        assert out.shape[0] == 2 and out.shape[1] == 6

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigError):
            make_frontend("mel")

    def test_batch_empty(self):
        fe = make_frontend("spectral")
        out = fe.transform_batch(np.empty((0, 6, 60)))
        assert out.shape[0] == 0


class TestTwoBranchExtractor:
    @pytest.fixture(scope="class")
    def small(self):
        return ExtractorConfig(embedding_dim=32, channels=(2, 4, 8))

    def test_logit_shape(self, small, rng):
        model = TwoBranchExtractor(small, num_classes=5, seed=0)
        out = model(rng.normal(size=(3, 2, 6, 31)))
        assert out.shape == (3, 5)

    def test_embedding_shape_and_range(self, small, rng):
        model = TwoBranchExtractor(small, num_classes=5, seed=0)
        emb = model.embed(rng.normal(size=(4, 2, 6, 31)))
        assert emb.shape == (4, 32)
        assert np.all((emb > 0.0) & (emb < 1.0))

    def test_rejects_wrong_input_shape(self, small, rng):
        model = TwoBranchExtractor(small, num_classes=5)
        with pytest.raises(ShapeError):
            model(rng.normal(size=(3, 2, 6, 30)))

    def test_branches_are_independent(self, small, rng):
        """Swapping the direction planes changes the output (the two
        branches have separate weights)."""
        model = TwoBranchExtractor(small, num_classes=5, seed=0)
        model.eval()
        x = rng.normal(size=(1, 2, 6, 31))
        swapped = x[:, ::-1, :, :].copy()
        assert not np.allclose(model.embed(x), model.embed(swapped))

    def test_end_to_end_gradient(self, rng):
        tiny = ExtractorConfig(embedding_dim=8, channels=(2, 2, 2))
        model = TwoBranchExtractor(tiny, num_classes=3, seed=0)
        x = rng.normal(size=(2, 2, 6, 31))
        assert check_layer_input_grad(model, x) < 1e-5

    def test_storage_default_config_near_paper(self):
        """The paper reports ~5 MB for the extractor."""
        model = TwoBranchExtractor(ExtractorConfig(), num_classes=34)
        mb = model.storage_nbytes() / 1e6
        assert 1.0 < mb < 8.0

    def test_rejects_single_class(self):
        with pytest.raises(ConfigError):
            TwoBranchExtractor(num_classes=1)

    def test_deterministic_seeding(self, small, rng):
        a = TwoBranchExtractor(small, num_classes=4, seed=3)
        b = TwoBranchExtractor(small, num_classes=4, seed=3)
        x = rng.normal(size=(1, 2, 6, 31))
        a.eval(), b.eval()
        np.testing.assert_array_equal(a.embed(x), b.embed(x))

    def test_state_dict_round_trip(self, small, rng):
        model = TwoBranchExtractor(small, num_classes=4, seed=1)
        x = rng.normal(size=(2, 2, 6, 31))
        model(x)  # touch running stats
        clone = TwoBranchExtractor(small, num_classes=4, seed=2)
        clone.load_state(model.state_dict())
        model.eval(), clone.eval()
        np.testing.assert_allclose(model.embed(x), clone.embed(x))

"""Unit tests for the adversarial scenario matrix building blocks.

The full-matrix integration (training a system, running every cell)
lives in ``benchmarks/test_scenario_matrix.py``; here we pin the
declarative pieces: degradation specs, the degradation operator itself,
grid ordering, and the refusal-aware scoring helpers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.eval.scenarios import (
    _REJECTED,
    DegradationSpec,
    Scenario,
    _cell_metrics,
    _distance_sets,
    _fused_score,
    default_degradations,
    default_motions,
    degrade_recording,
    run_scenario_matrix,
    scenario_grid,
)

RATE = 350.0
FULL_SCALE = 32767.0


@pytest.fixture()
def recording(rng):
    return rng.normal(0.0, 500.0, (128, 6))


class TestDegradationSpec:
    def test_clean_default(self):
        spec = DegradationSpec()
        assert spec.is_clean
        assert spec.name == "clean"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"quant_bits": 1},
            {"quant_bits": 17},
            {"clock_jitter_s": -0.001},
            {"drop_axes": (6,)},
            {"drop_axes": (-1,)},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            DegradationSpec(**{"name": "x", **kwargs})

    def test_any_knob_clears_is_clean(self):
        assert not DegradationSpec("q", quant_bits=8).is_clean
        assert not DegradationSpec("j", clock_jitter_s=0.001).is_clean
        assert not DegradationSpec("d", drop_axes=(0,)).is_clean


class TestDegradeRecording:
    def test_clean_spec_is_identity(self, recording, rng):
        out = degrade_recording(
            recording, DegradationSpec(), RATE, FULL_SCALE, rng
        )
        np.testing.assert_array_equal(out, recording)
        assert out is not recording  # always a new array

    def test_quantization_lands_on_grid(self, recording, rng):
        spec = DegradationSpec("q8", quant_bits=8)
        out = degrade_recording(recording, spec, RATE, FULL_SCALE, rng)
        step = 2.0 * FULL_SCALE / 2.0**8
        np.testing.assert_allclose(out, np.round(out / step) * step)
        # 256-count resolution really is coarser than the input.
        assert np.unique(out).size < np.unique(recording).size

    def test_dropped_axes_read_zero(self, recording, rng):
        spec = DegradationSpec("gyro", drop_axes=(3, 4, 5))
        out = degrade_recording(recording, spec, RATE, FULL_SCALE, rng)
        assert not out[:, 3:].any()
        np.testing.assert_array_equal(out[:, :3], recording[:, :3])

    def test_jitter_preserves_shape_and_range(self, recording, rng):
        spec = DegradationSpec("jit", clock_jitter_s=0.002)
        out = degrade_recording(recording, spec, RATE, FULL_SCALE, rng)
        assert out.shape == recording.shape
        assert not np.array_equal(out, recording)
        for axis in range(6):  # interpolation cannot extrapolate
            assert out[:, axis].min() >= recording[:, axis].min()
            assert out[:, axis].max() <= recording[:, axis].max()

    def test_same_rng_bitwise_identical(self, recording):
        spec = DegradationSpec("jit", clock_jitter_s=0.002, quant_bits=10)
        a = degrade_recording(
            recording, spec, RATE, FULL_SCALE, np.random.default_rng(5)
        )
        b = degrade_recording(
            recording, spec, RATE, FULL_SCALE, np.random.default_rng(5)
        )
        np.testing.assert_array_equal(a, b)


class TestScenarioGrid:
    def test_full_cross_product_clean_first(self):
        grid = scenario_grid()
        assert len(grid) == len(default_motions()) * len(default_degradations())
        first = grid[0]
        assert first.motion == "static" and first.degradation.is_clean
        assert first.name == "static+clean"
        assert len({s.name for s in grid}) == len(grid)

    def test_custom_axes(self):
        motions = {"static": default_motions()["static"]}
        degradations = [DegradationSpec(), DegradationSpec("q", quant_bits=4)]
        grid = scenario_grid(motions, degradations)
        assert [s.name for s in grid] == ["static+clean", "static+q"]

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ConfigError):
            run_scenario_matrix(None, None, None, [], scenarios=[])


class TestRefusalAwareScoring:
    def test_distance_sets_drop_refused(self):
        scores = {
            ("u", "u"): [(0.1, False), (_REJECTED, True)],
            ("u", "v"): [(0.9, False), (_REJECTED, True), (0.8, False)],
        }
        genuine, impostor = _distance_sets(scores)
        np.testing.assert_array_equal(genuine, [0.1])
        np.testing.assert_array_equal(impostor, [0.9, 0.8])

    def test_cell_metrics_separates_fta(self):
        scores = {
            ("u", "u"): [(0.1, False), (0.2, False)],
            ("u", "v"): [(0.9, False), (0.8, False)],
        }
        metrics = _cell_metrics(scores, threshold=0.5, refusal_count=3, total=10)
        assert metrics["eer"] == 0.0
        assert metrics["far"] == 0.0
        assert metrics["frr"] == 0.0
        assert metrics["refusal_rate"] == pytest.approx(0.3)

    def test_cell_metrics_with_nothing_acquired(self):
        scores = {("u", "u"): [(_REJECTED, True)], ("u", "v"): [(0.9, False)]}
        metrics = _cell_metrics(scores, threshold=0.5, refusal_count=1, total=1)
        assert metrics["eer"] == 0.5  # chance level, story told by FTA
        assert metrics["frr"] == 1.0

    def test_fused_score_weighted_mean(self):
        fused = _fused_score(0.2, False, 0.3, False, 0.4, 0.6, (3.0, 1.0))
        expected = (3.0 * (0.2 / 0.4) + 1.0 * (0.3 / 0.6)) / 4.0
        assert fused == pytest.approx(expected)

    def test_fused_score_refused_modality_is_absent(self):
        alone = _fused_score(_REJECTED, True, 0.3, False, 0.4, 0.6, (3.0, 1.0))
        assert alone == pytest.approx(0.3 / 0.6)
        other = _fused_score(0.2, False, _REJECTED, True, 0.4, 0.6, (3.0, 1.0))
        assert other == pytest.approx(0.2 / 0.4)

    def test_fused_score_double_refusal_is_maximal(self):
        fused = _fused_score(
            _REJECTED, True, _REJECTED, True, 0.4, 0.6, (1.0, 1.0)
        )
        assert fused == pytest.approx(_REJECTED / 0.4)
        assert fused > 1.0  # can never be accepted


class TestScenarioDataclass:
    def test_name_concatenates(self):
        scenario = Scenario(
            "walk", default_motions()["walk"], DegradationSpec("q8", quant_bits=8)
        )
        assert scenario.name == "walk+q8"


class TestMatrixIntegration:
    """A tiny two-person, two-cell matrix through the real system.

    The full grid lives in ``benchmarks/test_scenario_matrix.py``; this
    keeps the matrix/attack runners exercised by tier-1 (calibration,
    refusal accounting, the clean-first guard) at a few seconds' cost.
    """

    @pytest.fixture(scope="class")
    def rig(self, trained_model):
        from repro import Recorder, sample_population
        from repro.config import (
            MandiPassConfig,
            SamplingConfig,
            SecurityConfig,
        )
        from repro.core.system import MandiPass
        from repro.physio.heartbeat import HeartbeatVerifier

        sampling = SamplingConfig(duration_s=3.6, utterance_s=0.45)
        system = MandiPass(
            trained_model,
            config=MandiPassConfig(
                sampling=sampling,
                extractor=trained_model.config,
                security=SecurityConfig(
                    template_dim=trained_model.config.embedding_dim,
                    projected_dim=trained_model.config.embedding_dim,
                    matrix_seed=7,
                ),
            ),
        )
        verifier = HeartbeatVerifier(rate_hz=sampling.rate_hz)
        recorder = Recorder(sampling=sampling, seed=3, heartbeat=True)
        population = sample_population(2, 1, seed=7)
        for person in population:
            enrollment = [
                recorder.record(person, trial_index=i) for i in range(4)
            ]
            system.enroll(person.person_id, enrollment)
            verifier.fit(person.person_id, enrollment)
        return system, verifier, recorder, population

    @pytest.fixture(scope="class")
    def small_report(self, rig):
        system, verifier, recorder, population = rig
        scenarios = scenario_grid(
            {"static": default_motions()["static"]},
            [DegradationSpec(), DegradationSpec("gyro-drop", drop_axes=(3, 4, 5))],
        )
        return run_scenario_matrix(
            system, verifier, recorder, population,
            probe_trials=2, scenarios=scenarios,
        )

    def test_calibrates_from_clean_cell(self, small_report):
        calibration = small_report["calibration"]
        assert 0.0 < calibration["imu_threshold"] < 2.0
        assert 0.0 < calibration["heartbeat_threshold"] < 2.0
        assert calibration["fusion_weights"]["imu"] > 0.0

    def test_clean_cell_deltas_are_zero(self, small_report):
        rows = small_report["matrix"]
        assert [r["scenario"] for r in rows] == [
            "static+clean", "static+gyro-drop",
        ]
        assert all(d == 0.0 for d in rows[0]["deltas_vs_clean"].values())

    def test_gyro_drop_refuses_imu_not_heartbeat(self, small_report):
        """Three dead axes refuse the IMU pipeline; the cardiac channel
        reads the accelerometers and carries the fused decision."""
        cell = small_report["matrix"][1]["modalities"]
        assert cell["imu"]["refusal_rate"] == 1.0
        assert cell["heartbeat"]["refusal_rate"] < 1.0
        assert cell["fused"]["eer"] == cell["heartbeat"]["eer"]

    def test_non_clean_first_cell_without_thresholds_raises(self, rig):
        system, verifier, recorder, population = rig
        hostile_only = [
            scenario_grid(
                {"static": default_motions()["static"]},
                [DegradationSpec("gyro-drop", drop_axes=(3, 4, 5))],
            )[0]
        ]
        with pytest.raises(ConfigError, match="static\\+clean"):
            run_scenario_matrix(
                system, verifier, recorder, population,
                probe_trials=1, scenarios=hostile_only,
            )

    def test_attacks_report_per_modality_far(self, rig):
        from repro.eval.scenarios import run_attacks

        system, verifier, recorder, population = rig
        rows = run_attacks(
            system, verifier, recorder, population, attack_trials=1
        )
        by_name = {r["attack"]: r for r in rows}
        assert set(by_name) == {"replay", "mimicry"}
        assert by_name["replay"]["far"]["imu"] == 1.0
        assert by_name["replay"]["far"]["fused"] == 0.0
        for row in rows:
            for modality in ("imu", "heartbeat", "fused"):
                assert 0.0 <= row["far"][modality] <= 1.0

"""Pair generation, distributions and reporting tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.eval.distributions import (
    distance_distribution,
    genuine_distances_to_templates,
    vsr_against_templates,
)
from repro.eval.pairs import genuine_impostor_distances, probe_template_distances
from repro.eval.reporting import render_series, render_table


class TestPairs:
    def _clustered(self, rng, people=4, per=5, spread=0.05):
        centers = rng.normal(size=(people, 16))
        emb, labels = [], []
        for idx, center in enumerate(centers):
            emb.append(center + spread * rng.normal(size=(per, 16)))
            labels.extend([idx] * per)
        return np.concatenate(emb), np.array(labels)

    def test_counts(self, rng):
        emb, labels = self._clustered(rng)
        genuine, impostor = genuine_impostor_distances(emb, labels, None)
        assert genuine.size == 4 * (5 * 4 // 2)
        assert impostor.size == (20 * 19 // 2) - genuine.size

    def test_genuine_smaller_than_impostor(self, rng):
        emb, labels = self._clustered(rng)
        genuine, impostor = genuine_impostor_distances(emb, labels, None)
        assert genuine.mean() < impostor.mean()

    def test_subsampling_cap(self, rng):
        emb, labels = self._clustered(rng, people=6, per=10)
        _, impostor = genuine_impostor_distances(emb, labels, max_impostor_pairs=50)
        assert impostor.size == 50

    def test_subsampling_deterministic(self, rng):
        emb, labels = self._clustered(rng, people=6, per=10)
        _, a = genuine_impostor_distances(emb, labels, 50, seed=3)
        _, b = genuine_impostor_distances(emb, labels, 50, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_single_person_raises(self, rng):
        emb = rng.normal(size=(5, 4))
        with pytest.raises(ShapeError):
            genuine_impostor_distances(emb, np.zeros(5, dtype=int))

    def test_all_unique_labels_raises(self, rng):
        emb = rng.normal(size=(5, 4))
        with pytest.raises(ShapeError):
            genuine_impostor_distances(emb, np.arange(5))

    def test_probe_template_counts(self, rng):
        templates = rng.normal(size=(4, 8))
        probes = rng.normal(size=(12, 8))
        labels = np.repeat(np.arange(4), 3)
        genuine, impostor = probe_template_distances(probes, labels, templates)
        assert genuine.size == 12
        assert impostor.size == 12 * 3

    def test_probe_template_label_bound(self, rng):
        with pytest.raises(ShapeError):
            probe_template_distances(
                rng.normal(size=(2, 4)), np.array([0, 5]), rng.normal(size=(3, 4))
            )


class TestDistributions:
    def test_fractions_sum_to_one(self, rng):
        dist = distance_distribution(rng.uniform(0.0, 1.2, 500))
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_bucket_labels(self):
        dist = distance_distribution(np.array([0.05, 0.15]))
        assert dist["[0.0, 0.1)"] == pytest.approx(0.5)
        assert dist["[0.1, 0.2)"] == pytest.approx(0.5)

    def test_catch_all_bucket(self):
        dist = distance_distribution(np.array([1.9]))
        assert dist[">=0.7"] == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            distance_distribution(np.array([]))

    def test_vsr_against_templates(self, rng):
        templates = np.eye(4)
        probes = np.repeat(np.eye(4), 2, axis=0) + 0.01 * rng.normal(size=(8, 4))
        labels = np.repeat(np.arange(4), 2)
        vsr = vsr_against_templates(probes, templates, labels, threshold=0.45)
        assert vsr == 1.0

    def test_genuine_distance_extraction(self, rng):
        templates = rng.normal(size=(3, 6))
        probes = templates[np.array([0, 1, 2, 0])] + 0.001
        labels = np.array([0, 1, 2, 0])
        distances = genuine_distances_to_templates(probes, templates, labels)
        assert distances.shape == (4,)
        assert distances.max() < 0.01


class TestReporting:
    def test_table_contains_cells(self):
        text = render_table(["name", "eer"], [["ours", 0.0262], ["paper", 0.0128]])
        assert "ours" in text and "0.0262" in text
        assert "name" in text

    def test_table_title(self):
        text = render_table(["a"], [["b"]], title="Fig 10")
        assert text.startswith("Fig 10")

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ShapeError):
            render_table(["a", "b"], [["only-one"]])

    def test_series_alignment(self):
        text = render_series("EER vs axes", [1, 2, 3], [0.14, 0.05, 0.02])
        lines = text.splitlines()
        assert len(lines) == 3
        assert len(lines[1]) == len(lines[2])

    def test_series_rejects_length_mismatch(self):
        with pytest.raises(ShapeError):
            render_series("x", [1, 2], [1.0])

"""Golden regression: fixed-seed recording -> pinned values per stage.

The preprocess -> front end -> extractor -> verify chain has been
refactored twice (batch engine, strided/dtype hot path) and will be
again; these tests pin the *numbers* a fixed-seed synthetic recording
produces at every stage, so a future refactor that silently shifts the
numerics (a changed filter state, a reordered reduction, a dtype leak)
fails here even if every shape- and equivalence-test still passes.

All pins were produced by the float64 path at the time this file was
written; tolerances are loose enough for BLAS re-association across
platforms (rtol 1e-6) but far tighter than any genuine numeric change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Recorder, sample_population
from repro.config import ExtractorConfig
from repro.core.engine import InferenceEngine
from repro.core.extractor import TwoBranchExtractor
from repro.core.frontend import make_frontend
from repro.core.similarity import center_embedding, cosine_distance
from repro.dsp.pipeline import Preprocessor
from repro.security.cancelable import CancelableTransform

RTOL = 1e-6
ATOL = 1e-8


@pytest.fixture(scope="module")
def golden_population():
    return sample_population(2, 1, seed=1234)


@pytest.fixture(scope="module")
def golden_recorder():
    return Recorder(seed=99)


@pytest.fixture(scope="module")
def golden_recording(golden_population, golden_recorder):
    return golden_recorder.record(golden_population[0], trial_index=0)


@pytest.fixture(scope="module")
def golden_model():
    config = ExtractorConfig(embedding_dim=64, channels=(4, 8, 16))
    return TwoBranchExtractor(config, num_classes=4, seed=7).eval()


@pytest.fixture(scope="module")
def golden_debug(golden_recording):
    return Preprocessor().process_debug(golden_recording)


class TestPreprocessGolden:
    def test_recording_shape(self, golden_recording):
        assert golden_recording.shape == (210, 6)
        assert golden_recording.dtype == np.float64

    def test_onset_index(self, golden_debug):
        assert golden_debug.onset == 63

    def test_stage_shapes(self, golden_debug):
        for name in ("raw_segments", "despiked", "filtered", "normalized"):
            assert getattr(golden_debug, name).shape == (6, 60), name

    def test_segment_statistics(self, golden_debug):
        np.testing.assert_allclose(
            golden_debug.raw_segments.mean(), 987.472222222222, rtol=RTOL
        )
        np.testing.assert_allclose(
            golden_debug.raw_segments.std(), 3210.265469172562, rtol=RTOL
        )

    def test_filtered_statistics(self, golden_debug):
        np.testing.assert_allclose(
            golden_debug.filtered.mean(), -0.224150778094, rtol=RTOL, atol=ATOL
        )
        np.testing.assert_allclose(
            golden_debug.filtered.std(), 473.470362678735, rtol=RTOL
        )

    def test_normalized_statistics(self, golden_debug):
        normalized = golden_debug.normalized
        np.testing.assert_allclose(normalized.mean(), 0.522214293346, rtol=RTOL)
        np.testing.assert_allclose(normalized.std(), 0.241017778097, rtol=RTOL)
        np.testing.assert_allclose(
            normalized[0, :4],
            [1.0, 0.58036101, 0.2864406, 0.37748314],
            rtol=RTOL,
            atol=ATOL,
        )


class TestFrontendExtractorGolden:
    def test_frontend_values(self, golden_debug):
        features = make_frontend("spectral").transform(golden_debug.normalized)
        assert features.shape == (2, 6, 31)
        np.testing.assert_allclose(features.mean(), 0.838642876606, rtol=RTOL)
        np.testing.assert_allclose(features.std(), 0.413051957092, rtol=RTOL)
        np.testing.assert_allclose(features.max(), 2.691435380339, rtol=RTOL)

    def test_embedding_values(self, golden_debug, golden_model):
        features = make_frontend("spectral").transform(golden_debug.normalized)
        embedding = golden_model.embed(features[None].astype(np.float64))[0]
        assert embedding.shape == (64,)
        np.testing.assert_allclose(embedding.mean(), 0.509803995781, rtol=RTOL)
        np.testing.assert_allclose(embedding.std(), 0.048202714804, rtol=RTOL)
        np.testing.assert_allclose(
            embedding[:5],
            [0.55310001, 0.35216163, 0.47636362, 0.4682151, 0.62798484],
            rtol=RTOL,
            atol=ATOL,
        )


class TestVerifyChainGolden:
    @pytest.fixture(scope="class")
    def chain(self, golden_model):
        engine = InferenceEngine(
            golden_model, Preprocessor(), make_frontend("spectral")
        )
        transform = CancelableTransform(64, seed=5)
        return engine, transform

    def test_probe_vector(self, chain, golden_recording):
        engine, transform = chain
        probe = transform.apply(engine.embed_one(golden_recording))
        np.testing.assert_allclose(np.linalg.norm(probe), 0.362054708368, rtol=RTOL)
        np.testing.assert_allclose(
            probe[:3],
            [0.00394837, -0.02351611, 0.0064953],
            rtol=RTOL,
            atol=ATOL,
        )

    def test_genuine_and_impostor_distances(
        self, chain, golden_population, golden_recorder, golden_recording
    ):
        engine, transform = chain
        template = np.mean(
            [
                transform.apply(
                    engine.embed_one(
                        golden_recorder.record(golden_population[0], trial_index=t)
                    )
                )
                for t in (1, 2, 3)
            ],
            axis=0,
        )
        genuine = transform.apply(engine.embed_one(golden_recording))
        impostor = transform.apply(
            engine.embed_one(
                golden_recorder.record(golden_population[1], trial_index=0)
            )
        )
        np.testing.assert_allclose(
            cosine_distance(genuine, template), 0.028316409621, rtol=RTOL
        )
        np.testing.assert_allclose(
            cosine_distance(impostor, template), 0.171267697721, rtol=RTOL
        )

    def test_batch_path_matches_single_path(self, chain, golden_recording):
        """The engine batch embed must reproduce embed_one bit-for-bit."""
        engine, _ = chain
        single = engine.embed_one(golden_recording)
        outcome = engine.embed([golden_recording, golden_recording])
        assert outcome.num_ok == 2
        np.testing.assert_allclose(outcome.values[0], single, rtol=1e-12)
        np.testing.assert_allclose(outcome.values[1], single, rtol=1e-12)

    def test_centering_is_midpoint_shift(self, chain, golden_recording):
        engine, _ = chain
        centred = engine.embed_one(golden_recording)
        assert np.all(centred > -0.5) and np.all(centred < 0.5)
        np.testing.assert_allclose(
            center_embedding(centred + 0.5), centred, rtol=1e-12
        )


class TestStreamingGolden:
    """Fixed-seed goldens for the streaming layer (DESIGN.md §4j).

    Pins the streaming detector's onset, a two-event session's state
    trace (exact integers — sample positions, not numerics), and the
    decision distances, so a refactor of the ring buffer, the scan
    order, or the session state machine that shifts any observable
    behaviour fails loudly here.
    """

    @pytest.fixture(scope="class")
    def golden_system(self, golden_model, golden_population, golden_recorder):
        from repro.config import MandiPassConfig, SecurityConfig
        from repro.core.system import MandiPass

        config = MandiPassConfig(
            extractor=golden_model.config,
            security=SecurityConfig(
                template_dim=64, projected_dim=64, matrix_seed=5
            ),
        )
        system = MandiPass(golden_model, config=config)
        system.enroll(
            "golden",
            [
                golden_recorder.record(golden_population[0], trial_index=t)
                for t in (1, 2, 3)
            ],
        )
        return system

    def test_streaming_onset_matches_batch_golden(self, golden_recording):
        from repro.stream import StreamingOnsetDetector

        detector = StreamingOnsetDetector()
        onset = None
        for pos in range(0, golden_recording.shape[0], 35):
            onset = detector.push(golden_recording[pos : pos + 35])
            if onset is not None:
                break
        assert onset == 63  # == TestPreprocessGolden.test_onset_index
        assert detector.final_at == 100

    def test_session_trace_golden(
        self, golden_system, golden_recording, golden_recorder, golden_population
    ):
        from repro.config import StreamConfig
        from repro.stream import StreamSession

        stream = np.concatenate(
            [
                golden_recording,
                golden_recorder.record(golden_population[0], trial_index=4),
            ],
            axis=0,
        )
        session = StreamSession(
            "golden",
            system=golden_system,
            config=StreamConfig(cooldown_samples=105),
        )
        decisions = []
        for pos in range(0, stream.shape[0], 35):
            decisions += session.push(stream[pos : pos + 35])
        decisions += session.close()

        assert [
            (d.onset, d.window_start, d.window_end) for d in decisions
        ] == [(63, 0, 123), (237, 228, 297)]
        assert session.trace == (
            ("IDLE", 0),
            ("ONSET", 100),
            ("CAPTURING", 100),
            ("VERIFYING", 123),
            ("COOLDOWN", 123),
            ("IDLE", 228),
            ("ONSET", 278),
            ("CAPTURING", 278),
            ("VERIFYING", 297),
            ("COOLDOWN", 297),
            ("IDLE", 402),
        )

    def test_session_decision_distances_golden(
        self, golden_system, golden_recording, golden_recorder, golden_population
    ):
        from repro.config import StreamConfig
        from repro.stream import StreamSession

        stream = np.concatenate(
            [
                golden_recording,
                golden_recorder.record(golden_population[0], trial_index=4),
            ],
            axis=0,
        )
        session = StreamSession(
            "golden",
            system=golden_system,
            config=StreamConfig(cooldown_samples=105),
        )
        decisions = []
        for pos in range(0, stream.shape[0], 35):
            decisions += session.push(stream[pos : pos + 35])
        decisions += session.close()

        assert [d.result.accepted for d in decisions] == [True, True]
        np.testing.assert_allclose(
            [d.result.distance for d in decisions],
            [0.028316409621, 0.057954878964],
            rtol=RTOL,
        )
        # The first streaming decision IS the batch verify on the full
        # first recording — bitwise, not approximately.
        batch = golden_system.verify("golden", golden_recording)
        assert decisions[0].result.distance == batch.distance


class TestHeartbeatFusionGolden:
    """Fixed-seed goldens for the cardiac channel (DESIGN.md §4l).

    Same contract as the IMU chain above: a fixed-seed heartbeat-carrying
    capture pins the verifier's template, features and genuine/impostor
    distances, plus one end-to-end fused decision, so a refactor of the
    beat detector, the fold alignment or the fusion arithmetic that
    shifts the numerics fails loudly.
    """

    @pytest.fixture(scope="class")
    def hb_sampling(self):
        from repro.config import SamplingConfig

        # Heartbeat reading needs several cardiac cycles of silent tail.
        return SamplingConfig(duration_s=3.6, utterance_s=0.45)

    @pytest.fixture(scope="class")
    def hb_recorder(self, hb_sampling):
        return Recorder(sampling=hb_sampling, seed=99, heartbeat=True)

    @pytest.fixture(scope="class")
    def hb_verifier(self, hb_sampling, hb_recorder, golden_population):
        from repro.physio.heartbeat import HeartbeatVerifier

        verifier = HeartbeatVerifier(rate_hz=hb_sampling.rate_hz)
        verifier.fit(
            golden_population[0].person_id,
            [hb_recorder.record(golden_population[0], trial_index=t) for t in (1, 2, 3)],
        )
        return verifier

    @pytest.fixture(scope="class")
    def hb_probe(self, hb_recorder, golden_population):
        # Trial 9 acquires cleanly under seed 99 (2, 3, 4 also would;
        # many others refuse with too few clean beats -- the channel's
        # documented ~FTA behaviour, not an error).
        return hb_recorder.record(golden_population[0], trial_index=9)

    def test_template_values(self, hb_verifier, golden_population):
        template = hb_verifier.template(golden_population[0].person_id)
        assert template.shape == (122,)
        np.testing.assert_allclose(template.mean(), 0.003183864747, rtol=RTOL)
        np.testing.assert_allclose(template.std(), 0.092465266873, rtol=RTOL)
        np.testing.assert_allclose(
            template[:3],
            [-0.00113236, -0.01375706, 0.02227187],
            rtol=1e-5,
            atol=ATOL,
        )

    def test_probe_features(self, hb_verifier, hb_probe):
        features = hb_verifier.beat_features(hb_probe)
        assert features.shape == (122,)
        np.testing.assert_allclose(features.mean(), 0.001970076365, rtol=RTOL)
        np.testing.assert_allclose(features.std(), 0.092189152245, rtol=RTOL)
        np.testing.assert_allclose(features[0], -0.004546337474, rtol=RTOL)

    def test_genuine_and_impostor_distances(
        self, hb_verifier, hb_probe, hb_recorder, golden_population
    ):
        user = golden_population[0].person_id
        genuine = hb_verifier.score(user, hb_probe)
        impostor = hb_verifier.score(
            user, hb_recorder.record(golden_population[1], trial_index=9)
        )
        np.testing.assert_allclose(genuine, 0.047365519522, rtol=RTOL)
        np.testing.assert_allclose(impostor, 0.474366182986, rtol=RTOL)

    def test_fused_decision_golden(
        self, hb_verifier, hb_probe, hb_recorder, golden_model, golden_population
    ):
        """End-to-end fused decision: IMU chain + cardiac chain -> score."""
        from repro.core.fusion import fuse_score_level
        from repro.types import VerificationResult

        engine = InferenceEngine(
            golden_model, Preprocessor(), make_frontend("spectral")
        )
        transform = CancelableTransform(64, seed=5)
        template = np.mean(
            [
                transform.apply(
                    engine.embed_one(
                        hb_recorder.record(golden_population[0], trial_index=t)
                    )
                )
                for t in (1, 2, 3)
            ],
            axis=0,
        )
        imu_distance = cosine_distance(
            transform.apply(engine.embed_one(hb_probe)), template
        )
        np.testing.assert_allclose(imu_distance, 0.135954528451, rtol=RTOL)

        user = golden_population[0].person_id
        imu = VerificationResult(
            accepted=imu_distance <= 0.48,
            distance=float(imu_distance),
            threshold=0.48,
            user_id=user,
        )
        heart = hb_verifier.verify(user, hb_probe)
        assert heart.accepted and heart.exit_stage == "full"
        fused = fuse_score_level([imu, heart], weights=[2.0, 1.0])
        assert fused.accepted
        assert fused.threshold == 1.0
        np.testing.assert_allclose(fused.distance, 0.238164816796, rtol=RTOL)

"""Classical classifier tests (the Fig. 7(b)/10(a) baselines)."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotFittedError, ShapeError
from repro.ml import (
    DecisionTreeClassifier,
    GaussianNBClassifier,
    KNNClassifier,
    LinearSVMClassifier,
    MLPClassifier,
    accuracy,
    train_test_split,
)


def _blobs(rng, n_per_class=40, spread=0.5):
    """Three well-separated Gaussian blobs in 4-D."""
    centers = np.array(
        [[0, 0, 0, 0], [5, 5, 0, 0], [0, 5, 5, 5]], dtype=float
    )
    xs, ys = [], []
    for label, center in enumerate(centers):
        xs.append(rng.normal(center, spread, size=(n_per_class, 4)))
        ys.append(np.full(n_per_class, label))
    return np.concatenate(xs), np.concatenate(ys)


ALL_CLASSIFIERS = [
    KNNClassifier,
    GaussianNBClassifier,
    DecisionTreeClassifier,
    LinearSVMClassifier,
    lambda: MLPClassifier(epochs=30),
]


class TestAllClassifiers:
    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_separable_blobs_high_accuracy(self, factory, rng):
        inputs, labels = _blobs(rng)
        clf = factory().fit(inputs, labels)
        assert clf.score(inputs, labels) > 0.95

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_predict_before_fit_raises(self, factory, rng):
        with pytest.raises(NotFittedError):
            factory().predict(rng.normal(size=(3, 4)))

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_generalises_to_heldout(self, factory, rng):
        inputs, labels = _blobs(rng, n_per_class=60)
        xtr, xte, ytr, yte = train_test_split(inputs, labels, 0.25, seed=1)
        clf = factory().fit(xtr, ytr)
        assert clf.score(xte, yte) > 0.9

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_rejects_1d_input(self, factory):
        with pytest.raises(ShapeError):
            factory().fit(np.zeros(10), np.zeros(10))


class TestKNN:
    def test_k1_memorises(self, rng):
        inputs, labels = _blobs(rng)
        clf = KNNClassifier(k=1).fit(inputs, labels)
        assert clf.score(inputs, labels) == 1.0

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigError):
            KNNClassifier(k=0)

    def test_scaling_invariance(self, rng):
        """Internal standardisation makes huge-scale features harmless."""
        inputs, labels = _blobs(rng)
        scaled = inputs.copy()
        scaled[:, 0] *= 1e6
        acc_plain = KNNClassifier(k=3).fit(inputs, labels).score(inputs, labels)
        acc_scaled = KNNClassifier(k=3).fit(scaled, labels).score(scaled, labels)
        assert abs(acc_plain - acc_scaled) < 0.05


class TestNaiveBayes:
    def test_log_proba_shape(self, rng):
        inputs, labels = _blobs(rng)
        clf = GaussianNBClassifier().fit(inputs, labels)
        assert clf.predict_log_proba(inputs[:5]).shape == (5, 3)

    def test_priors_reflect_imbalance(self, rng):
        inputs = rng.normal(size=(100, 2))
        labels = np.array([0] * 90 + [1] * 10)
        clf = GaussianNBClassifier().fit(inputs, labels)
        # With identical likelihoods, the majority class wins.
        preds = clf.predict(rng.normal(size=(50, 2)))
        assert np.mean(preds == 0) > 0.8

    def test_constant_feature_does_not_crash(self, rng):
        inputs, labels = _blobs(rng)
        inputs[:, 3] = 1.0
        clf = GaussianNBClassifier().fit(inputs, labels)
        assert np.isfinite(clf.predict_log_proba(inputs[:2])).all()


class TestDecisionTree:
    def test_depth_limit_respected(self, rng):
        inputs, labels = _blobs(rng)
        clf = DecisionTreeClassifier(max_depth=2).fit(inputs, labels)
        assert clf.depth() <= 2

    def test_pure_node_stops_splitting(self):
        inputs = np.array([[0.0], [1.0], [2.0]])
        labels = np.array([1, 1, 1])
        clf = DecisionTreeClassifier().fit(inputs, labels)
        assert clf.depth() == 0

    def test_xor_needs_depth_two(self, rng):
        inputs = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        inputs = np.repeat(inputs, 10, axis=0) + rng.normal(0, 0.05, (40, 2))
        labels = np.repeat([0, 1, 1, 0], 10)
        clf = DecisionTreeClassifier(max_depth=4).fit(inputs, labels)
        assert clf.score(inputs, labels) > 0.95

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ConfigError):
            DecisionTreeClassifier(min_samples_split=1)


class TestSVM:
    def test_decision_function_shape(self, rng):
        inputs, labels = _blobs(rng)
        clf = LinearSVMClassifier(epochs=10).fit(inputs, labels)
        assert clf.decision_function(inputs[:7]).shape == (7, 3)

    def test_margin_sign_separates_binary(self, rng):
        inputs = np.concatenate(
            [rng.normal(-3, 0.5, (50, 2)), rng.normal(3, 0.5, (50, 2))]
        )
        labels = np.array([0] * 50 + [1] * 50)
        clf = LinearSVMClassifier(epochs=20).fit(inputs, labels)
        assert clf.score(inputs, labels) > 0.98

    def test_rejects_bad_regularization(self):
        with pytest.raises(ConfigError):
            LinearSVMClassifier(regularization=0.0)


class TestHelpers:
    def test_accuracy_basic(self):
        assert accuracy(np.array([1, 1, 0]), np.array([1, 0, 0])) == pytest.approx(2 / 3)

    def test_accuracy_rejects_empty(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([]), np.array([]))

    def test_split_is_stratified(self, rng):
        inputs, labels = _blobs(rng, n_per_class=50)
        _, _, ytr, yte = train_test_split(inputs, labels, 0.2, seed=0)
        for cls in range(3):
            assert np.sum(yte == cls) == 10

    def test_split_disjoint_and_complete(self, rng):
        inputs, labels = _blobs(rng, n_per_class=20)
        xtr, xte, ytr, yte = train_test_split(inputs, labels, 0.2, seed=0)
        assert len(xtr) + len(xte) == len(inputs)

    def test_split_rejects_bad_fraction(self, rng):
        inputs, labels = _blobs(rng)
        with pytest.raises(ShapeError):
            train_test_split(inputs, labels, 1.5)

"""Parametrized numerical gradient checks across layer configurations.

The single most valuable property of a from-scratch backprop framework
is that every (shape, stride, padding) combination backpropagates
exactly; this grid pins the combinations the extractor and its
ablations actually use, plus asymmetric edge cases.
"""

import numpy as np
import pytest

from repro.nn import BatchNorm2d, Conv2d, Linear, Sequential
from repro.nn.gradcheck import (
    check_layer_input_grad,
    check_layer_param_grads,
    numerical_gradient,
)

TOL = 1e-6


@pytest.mark.parametrize("kernel", [(1, 1), (3, 3), (3, 5), (5, 3)])
@pytest.mark.parametrize("stride", [(1, 1), (1, 2), (2, 2)])
def test_conv_grid_input_grad(kernel, stride, rng):
    pad = (kernel[0] // 2, kernel[1] // 2)
    conv = Conv2d(2, 3, kernel, stride, pad, rng=rng)
    x = rng.normal(size=(2, 2, 6, 12))
    assert check_layer_input_grad(conv, x) < TOL


@pytest.mark.parametrize("kernel", [(3, 3), (3, 5)])
@pytest.mark.parametrize("stride", [(1, 2), (2, 2)])
def test_conv_grid_param_grads(kernel, stride, rng):
    pad = (kernel[0] // 2, kernel[1] // 2)
    conv = Conv2d(1, 2, kernel, stride, pad, rng=rng)
    x = rng.normal(size=(2, 1, 6, 12))
    assert max(check_layer_param_grads(conv, x).values()) < TOL


@pytest.mark.parametrize("padding", [(0, 0), (0, 1), (2, 0)])
def test_conv_asymmetric_padding(padding, rng):
    conv = Conv2d(1, 2, (3, 3), (1, 1), padding, rng=rng)
    x = rng.normal(size=(1, 1, 7, 9))
    assert check_layer_input_grad(conv, x) < TOL


@pytest.mark.parametrize("channels", [1, 4])
@pytest.mark.parametrize("batch", [1, 5])
def test_batchnorm_grid(channels, batch, rng):
    bn = BatchNorm2d(channels)
    x = rng.normal(size=(batch, channels, 3, 4)) * 2.0 + 1.0
    assert check_layer_input_grad(bn, x) < 1e-5


@pytest.mark.parametrize("in_features,out_features", [(1, 1), (7, 3), (16, 16)])
def test_linear_grid(in_features, out_features, rng):
    lin = Linear(in_features, out_features, rng=rng)
    x = rng.normal(size=(3, in_features))
    assert check_layer_input_grad(lin, x) < TOL
    assert max(check_layer_param_grads(lin, x).values()) < TOL


def test_numerical_gradient_of_quadratic(rng):
    """The checker itself is validated against a known analytic gradient."""
    a = rng.normal(size=(4, 4))
    sym = a + a.T

    def quad(x):
        return float(x @ sym @ x)

    x0 = rng.normal(size=4)
    numeric = numerical_gradient(quad, x0.copy())
    np.testing.assert_allclose(numeric, 2.0 * sym @ x0, atol=1e-5)


def test_deep_stack_end_to_end(rng):
    """Three stacked convs + bn (the extractor's branch depth)."""
    from repro.nn import Flatten, ReLU

    net = Sequential(
        Conv2d(1, 2, (3, 3), (1, 2), (1, 1), rng=rng),
        BatchNorm2d(2),
        ReLU(),
        Conv2d(2, 3, (3, 3), (1, 2), (1, 1), rng=rng),
        BatchNorm2d(3),
        ReLU(),
        Conv2d(3, 4, (3, 3), (1, 2), (1, 1), rng=rng),
        BatchNorm2d(4),
        ReLU(),
        Flatten(),
        Linear(4 * 6 * 4, 5, rng=rng),
    )
    x = rng.normal(size=(2, 1, 6, 31))
    assert check_layer_input_grad(net, x) < 1e-4

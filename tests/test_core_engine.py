"""The batch-first inference engine and its BatchOutcome contract.

Covers the degenerate batches (empty, all-fail, mixed — input-order
indices must survive all three), single-vs-batch numerical equivalence
at every stage, the verify/verify_many decision parity, and the
eval-mode cache/state satellites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import InferenceEngine, MandiPass
from repro.core.engine import BatchItemFailure, BatchOutcome
from repro.core.frontend import GradientFrontEnd, RectifiedSpectralFrontEnd
from repro.core.mandibleprint import extract_embeddings
from repro.core.verification import REJECTED_DISTANCE
from repro.dsp.pipeline import Preprocessor
from repro.errors import ConfigError, ModelError, ShapeError
from repro.nn.layers import BatchNorm2d, Conv2d, Linear, ReLU, Sigmoid

SILENCE = np.zeros((210, 6))


def _probes(population, recorder, good=3, bad_positions=(1,)):
    """A mixed batch: good recordings with silence spliced in."""
    batch = [
        recorder.record(population[i % len(population)], trial_index=40 + i)
        for i in range(good)
    ]
    for pos in bad_positions:
        batch.insert(pos, SILENCE.copy())
    return batch


# ---------------------------------------------------------------- outcome


class TestBatchOutcome:
    def test_validates_coverage(self):
        with pytest.raises(ShapeError):
            BatchOutcome(
                values=np.zeros((2, 3)),
                indices=np.array([0, 1]),
                failures=(),
                batch_size=3,
            )
        with pytest.raises(ShapeError):
            BatchOutcome(
                values=np.zeros((2, 3)),
                indices=np.array([0]),
                failures=(),
                batch_size=2,
            )

    def test_helpers(self):
        failure = BatchItemFailure(index=1, error="OnsetNotFoundError", reason="x")
        outcome = BatchOutcome(
            values=np.array([[1.0], [2.0]]),
            indices=np.array([0, 2]),
            failures=(failure,),
            batch_size=3,
        )
        assert outcome.num_ok == 2
        assert outcome.num_failed == 1
        assert outcome.ok_mask().tolist() == [True, False, True]
        assert outcome.failure_for(1) is failure
        assert outcome.failure_for(0) is None
        scattered = outcome.scatter(fill_value=-1.0)
        assert scattered.tolist() == [[1.0], [-1.0], [2.0]]


# ----------------------------------------------------- degenerate batches


class TestDegenerateBatches:
    def test_empty_batch(self, mandipass_system):
        outcome = mandipass_system.engine.embed([])
        assert outcome.batch_size == 0
        assert outcome.num_ok == 0
        assert outcome.failures == ()
        assert outcome.values.shape == (
            0,
            mandipass_system.model.config.embedding_dim,
        )
        assert outcome.ok_mask().shape == (0,)

    def test_all_fail_batch(self, mandipass_system):
        batch = [SILENCE.copy(), SILENCE.copy(), SILENCE.copy()]
        outcome = mandipass_system.engine.embed(batch)
        assert outcome.batch_size == 3
        assert outcome.num_ok == 0
        assert outcome.values.shape[0] == 0
        assert [f.index for f in outcome.failures] == [0, 1, 2]
        for failure in outcome.failures:
            assert failure.error == "OnsetNotFoundError"
            assert failure.reason

    def test_mixed_batch_preserves_input_order(
        self, mandipass_system, population, recorder
    ):
        batch = _probes(population, recorder, good=4, bad_positions=(0, 3))
        outcome = mandipass_system.engine.embed(batch)
        assert outcome.batch_size == 6
        assert outcome.num_ok == 4
        assert outcome.indices.tolist() == [1, 2, 4, 5]
        assert [f.index for f in outcome.failures] == [0, 3]
        # Success rows line up with their input positions.
        for row, idx in enumerate(outcome.indices):
            single = mandipass_system.engine.embed_one(batch[idx])
            assert np.allclose(outcome.values[row], single)

    def test_ragged_batch_takes_per_item_path(self, mandipass_system, population, recorder):
        long = recorder.record(population[0], trial_index=90)
        short = recorder.record(population[1], trial_index=91)[:-7]
        outcome = mandipass_system.engine.embed([long, short, SILENCE.copy()])
        assert outcome.batch_size == 3
        assert outcome.indices.tolist() == [0, 1]
        assert outcome.failures[0].index == 2


# ------------------------------------------------------ stage equivalence


class TestStageEquivalence:
    def test_preprocess_batch_matches_single(self, population, recorder):
        pre = Preprocessor()
        batch = [
            recorder.record(population[i], trial_index=60 + i) for i in range(4)
        ]
        signals, indices, failures, degraded = pre.process_batch_detailed(batch)
        assert not failures
        assert degraded == ()
        assert indices.tolist() == [0, 1, 2, 3]
        for row, rec in zip(signals, batch):
            assert np.allclose(row, pre.process(rec))

    @pytest.mark.parametrize(
        "frontend",
        [
            GradientFrontEnd(order="temporal"),
            GradientFrontEnd(order="sorted"),
            RectifiedSpectralFrontEnd(),
        ],
        ids=["temporal", "sorted", "spectral"],
    )
    def test_frontend_batch_matches_single(
        self, frontend, population, recorder
    ):
        pre = Preprocessor()
        stack = np.stack(
            [
                pre.process(recorder.record(population[i], trial_index=70 + i))
                for i in range(3)
            ]
        )
        batched = frontend.transform_batch(stack)
        for row, signal in zip(batched, stack):
            assert np.allclose(row, frontend.transform(signal))

    def test_embed_matches_embed_one(self, mandipass_system, population, recorder):
        engine = mandipass_system.engine
        batch = [
            recorder.record(population[i], trial_index=80 + i) for i in range(3)
        ]
        outcome = engine.embed(batch)
        assert outcome.num_ok == 3
        for row, rec in zip(outcome.values, batch):
            assert np.allclose(row, engine.embed_one(rec))


# ------------------------------------------------------------- verify_many


class TestVerifyMany:
    def test_matches_sequential_verify(self, mandipass_system, population, recorder):
        device = mandipass_system
        device.enroll(
            "engine-user",
            [recorder.record(population[2], trial_index=i) for i in range(5)],
        )
        batch = [
            recorder.record(population[2], trial_index=50),  # genuine
            SILENCE.copy(),                                  # unusable
            recorder.record(population[5], trial_index=50),  # impostor
            recorder.record(population[2], trial_index=51),  # genuine
        ]
        many = device.verify_many("engine-user", batch)
        singles = [device.verify("engine-user", rec) for rec in batch]
        assert len(many) == len(batch)
        for m, s in zip(many, singles):
            assert m.accepted == s.accepted
            assert np.allclose(m.distance, s.distance)
        assert many[1].accepted is False
        assert many[1].distance == REJECTED_DISTANCE

    def test_empty_probe_list(self, mandipass_system, population, recorder):
        device = mandipass_system
        if not device.is_enrolled("engine-user"):
            device.enroll(
                "engine-user",
                [recorder.record(population[2], trial_index=i) for i in range(5)],
            )
        assert device.verify_many("engine-user", []) == []


# ------------------------------------------------------- engine construction


class TestEngineConstruction:
    def test_feature_only_engine_rejects_signal_entry_points(self, trained_model):
        engine = InferenceEngine(trained_model)
        with pytest.raises(ConfigError):
            engine.preprocess([SILENCE.copy()])
        with pytest.raises(ConfigError):
            engine.embed([SILENCE.copy()])

    def test_bad_batch_size(self, trained_model):
        with pytest.raises(ConfigError):
            InferenceEngine(trained_model, batch_size=0)

    def test_embed_features_centered(self, trained_model, hired_dataset):
        from repro.core.similarity import center_embedding

        engine = InferenceEngine(trained_model)
        emb = engine.embed_features(hired_dataset.features[:8])
        assert emb.shape == (8, trained_model.config.embedding_dim)
        expected = center_embedding(
            extract_embeddings(trained_model, hired_dataset.features[:8])
        )
        assert np.allclose(emb, expected)


# ----------------------------------------------- eval-mode state satellites


class TestEvalModeSatellites:
    def test_extract_embeddings_restores_training_state(
        self, trained_model, hired_dataset
    ):
        trained_model.train()
        extract_embeddings(trained_model, hired_dataset.features[:4])
        assert trained_model.training is True
        trained_model.eval()
        extract_embeddings(trained_model, hired_dataset.features[:4])
        assert trained_model.training is False
        trained_model.eval()

    def test_eval_forward_caches_nothing(self, rng):
        conv = Conv2d(1, 2, (3, 3), (1, 1), (1, 1), rng=rng)
        bn = BatchNorm2d(2)
        relu = ReLU()
        linear = Linear(4, 3, rng=rng)
        sigmoid = Sigmoid()
        x = rng.normal(size=(2, 1, 4, 4))
        for module in (conv, bn, relu, linear, sigmoid):
            module.eval()
        out = relu(bn(conv(x)))
        sigmoid(linear(rng.normal(size=(2, 4))))
        assert out.shape == (2, 2, 4, 4)
        assert conv._cache is None
        assert bn._cache is None
        assert relu._mask is None
        assert linear._input is None
        assert sigmoid._out is None
        with pytest.raises(ModelError):
            conv.backward(np.zeros_like(out))

    def test_train_forward_still_caches(self, rng):
        conv = Conv2d(1, 2, (3, 3), (1, 1), (1, 1), rng=rng)
        conv.train()
        out = conv(rng.normal(size=(1, 1, 4, 4)))
        assert conv._cache is not None
        conv.backward(np.zeros_like(out))

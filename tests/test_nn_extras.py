"""Tests for pooling, extra activations, schedulers and RMSProp."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn import (
    Adam,
    AvgPool2d,
    CosineAnnealingLR,
    EarlyStopping,
    ExponentialLR,
    GELU,
    LeakyReLU,
    MaxPool2d,
    RMSProp,
    SGD,
    Softmax,
    StepLR,
    Tanh,
    clip_grad_norm,
)
from repro.nn.gradcheck import check_layer_input_grad
from repro.nn.tensor import Parameter

TOL = 1e-6


class TestPooling:
    def test_maxpool_values(self):
        pool = MaxPool2d((2, 2))
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradient(self, rng):
        pool = MaxPool2d((2, 2))
        x = rng.normal(size=(2, 3, 4, 6))
        assert check_layer_input_grad(pool, x) < TOL

    def test_maxpool_strided_gradient(self, rng):
        pool = MaxPool2d((2, 2), stride=(1, 2))
        x = rng.normal(size=(2, 2, 5, 6))
        assert check_layer_input_grad(pool, x) < TOL

    def test_avgpool_values(self):
        pool = AvgPool2d((2, 2))
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_gradient(self, rng):
        pool = AvgPool2d((2, 3))
        x = rng.normal(size=(2, 2, 4, 6))
        assert check_layer_input_grad(pool, x) < TOL

    def test_rejects_bad_kernel(self):
        with pytest.raises(ShapeError):
            MaxPool2d((0, 2))


class TestActivations:
    def test_tanh_gradient(self, rng):
        assert check_layer_input_grad(Tanh(), rng.normal(size=(3, 7))) < TOL

    def test_leaky_relu_gradient(self, rng):
        x = rng.normal(size=(3, 7)) + 0.05
        assert check_layer_input_grad(LeakyReLU(0.1), x) < TOL

    def test_leaky_relu_negative_slope(self):
        out = LeakyReLU(0.1)(np.array([-2.0, 3.0]))
        np.testing.assert_allclose(out, [-0.2, 3.0])

    def test_gelu_gradient(self, rng):
        assert check_layer_input_grad(GELU(), rng.normal(size=(3, 7))) < 1e-5

    def test_gelu_matches_known_values(self):
        out = GELU()(np.array([0.0, 1.0, -1.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(0.8412, abs=1e-3)
        assert out[2] == pytest.approx(-0.1588, abs=1e-3)

    def test_softmax_rows_sum_to_one(self, rng):
        out = Softmax()(rng.normal(size=(4, 6)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_softmax_gradient(self, rng):
        assert check_layer_input_grad(Softmax(), rng.normal(size=(3, 5))) < TOL


class TestSchedulers:
    def _optimizer(self):
        return SGD([Parameter(np.zeros(2))], lr=1.0)

    def test_step_lr(self):
        sched = StepLR(self._optimizer(), step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        sched = CosineAnnealingLR(self._optimizer(), total_epochs=10, min_lr=0.1)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.1)

    def test_cosine_monotone_decreasing(self):
        sched = CosineAnnealingLR(self._optimizer(), total_epochs=8)
        lrs = [sched.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_exponential(self):
        sched = ExponentialLR(self._optimizer(), gamma=0.5)
        assert sched.step() == pytest.approx(0.5)
        assert sched.step() == pytest.approx(0.25)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            StepLR(self._optimizer(), step_size=0)
        with pytest.raises(ConfigError):
            ExponentialLR(self._optimizer(), gamma=0.0)


class TestClipAndEarlyStop:
    def test_clip_reduces_norm(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_clip_leaves_small_gradients(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 0.1)
        clip_grad_norm([param], max_norm=5.0)
        np.testing.assert_allclose(param.grad, 0.1)

    def test_early_stopping_min_mode(self):
        stopper = EarlyStopping(patience=2, mode="min")
        values = [1.0, 0.9, 0.95, 0.96]
        stops = [stopper.update(v) for v in values]
        assert stops == [False, False, False, True]

    def test_early_stopping_max_mode(self):
        stopper = EarlyStopping(patience=1, mode="max")
        assert not stopper.update(0.5)
        assert not stopper.update(0.7)
        assert stopper.update(0.6)

    def test_min_delta_counts(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1, mode="min")
        assert not stopper.update(1.0)
        assert stopper.update(0.95)  # improvement below min_delta


class TestRMSProp:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([5.0, -3.0]))
        opt = RMSProp([param], lr=0.05)
        for _ in range(500):
            param.zero_grad()
            param.accumulate(2.0 * param.data)
            opt.step()
        assert np.abs(param.data).max() < 1e-2

    def test_momentum_variant(self):
        param = Parameter(np.array([5.0]))
        opt = RMSProp([param], lr=0.02, momentum=0.9)
        for _ in range(300):
            param.zero_grad()
            param.accumulate(2.0 * param.data)
            opt.step()
        assert abs(float(param.data[0])) < 0.5

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigError):
            RMSProp([Parameter(np.zeros(1))], alpha=1.0)

"""Voice source tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.physio.voice import VoiceSource, rosenberg_pulse
from repro.types import Tone


class TestRosenbergPulse:
    def test_range_zero_to_one(self):
        phase = np.linspace(0.0, 0.999, 500)
        pulse = rosenberg_pulse(phase, 0.6)
        assert pulse.min() >= 0.0
        assert pulse.max() <= 1.0 + 1e-12

    def test_closed_phase_is_zero(self):
        phase = np.linspace(0.65, 0.999, 100)
        assert np.all(rosenberg_pulse(phase, 0.6) == 0.0)

    def test_peak_at_two_thirds_open(self):
        oq = 0.6
        phase = np.linspace(0.0, oq, 1000)
        pulse = rosenberg_pulse(phase, oq)
        peak = phase[np.argmax(pulse)]
        assert peak == pytest.approx(oq * 2 / 3, abs=0.02)

    def test_rejects_bad_open_quotient(self):
        with pytest.raises(ConfigError):
            rosenberg_pulse(np.array([0.1]), 1.5)


class TestVoiceSource:
    def test_silent_before_onset(self, population, rng):
        voice = VoiceSource(population[0])
        wave = voice.synthesize(0.5, 2800, rng, onset_s=0.2)
        onset_idx = int(0.2 * 2800)
        assert np.all(wave[: onset_idx - 1] == 0.0)
        assert np.any(wave[onset_idx:] != 0.0)

    def test_phase_locked_to_onset(self, population):
        """The first glottal cycle begins at the onset, not earlier."""
        voice = VoiceSource(population[0], jitter=0.0, shimmer=0.0)
        rng = np.random.default_rng(0)
        _, phase = voice.synthesize_with_phase(0.5, 2800, rng, onset_s=0.2)
        onset_idx = int(0.2 * 2800)
        assert phase[onset_idx - 1] == pytest.approx(0.0, abs=1e-9)

    def test_tone_scales_f0(self, population):
        person = population[0]
        assert VoiceSource(person, tone=Tone.HIGH).effective_f0() > person.f0_hz
        assert VoiceSource(person, tone=Tone.LOW).effective_f0() < person.f0_hz
        assert VoiceSource(person).effective_f0() == pytest.approx(person.f0_hz)

    def test_output_length(self, population, rng):
        voice = VoiceSource(population[0])
        wave = voice.synthesize(0.6, 2800, rng)
        assert wave.shape == (1680,)

    def test_fundamental_frequency_visible(self, population):
        """The strongest non-DC component sits near F0."""
        person = population[1]
        voice = VoiceSource(person, jitter=0.0, shimmer=0.0)
        rng = np.random.default_rng(0)
        rate = 8000.0
        wave = voice.synthesize(1.0, rate, rng, onset_s=0.0)
        spectrum = np.abs(np.fft.rfft(wave - wave.mean()))
        freqs = np.fft.rfftfreq(wave.size, 1.0 / rate)
        peak = freqs[np.argmax(spectrum)]
        assert peak == pytest.approx(person.f0_hz, rel=0.05)

    def test_deterministic_given_rng(self, population):
        voice = VoiceSource(population[0])
        a = voice.synthesize(0.3, 2800, np.random.default_rng(1))
        b = voice.synthesize(0.3, 2800, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_rejects_negative_jitter(self, population):
        with pytest.raises(ConfigError):
            VoiceSource(population[0], jitter=-0.1)

    def test_rejects_bad_duration(self, population, rng):
        with pytest.raises(ConfigError):
            VoiceSource(population[0]).synthesize(-1.0, 2800, rng)

    def test_breathiness_adds_noise_floor(self, population):
        """Aspiration raises energy between harmonics."""
        import dataclasses

        person = dataclasses.replace(population[0], breathiness=0.0)
        breathy = dataclasses.replace(population[0], breathiness=0.5)
        rate = 8000.0
        clean_wave = VoiceSource(person, jitter=0.0, shimmer=0.0).synthesize(
            1.0, rate, np.random.default_rng(2), onset_s=0.0
        )
        breathy_wave = VoiceSource(breathy, jitter=0.0, shimmer=0.0).synthesize(
            1.0, rate, np.random.default_rng(2), onset_s=0.0
        )
        f0 = person.f0_hz
        freqs = np.fft.rfftfreq(clean_wave.size, 1.0 / rate)
        between = (freqs > f0 * 1.3) & (freqs < f0 * 1.7)
        clean_energy = np.sum(np.abs(np.fft.rfft(clean_wave))[between] ** 2)
        breathy_energy = np.sum(np.abs(np.fft.rfft(breathy_wave))[between] ** 2)
        assert breathy_energy > clean_energy

"""Propagation model tests (Fig. 1 / Section II-A)."""

import math

import pytest

from repro.errors import ConfigError
from repro.physio.propagation import BodyLocation, PropagationModel


class TestGains:
    def test_throat_is_unity(self):
        assert PropagationModel().gain_to(BodyLocation.THROAT) == 1.0

    def test_monotone_decay_along_path(self):
        model = PropagationModel()
        throat = model.gain_to(BodyLocation.THROAT)
        mandible = model.gain_to(BodyLocation.MANDIBLE)
        ear = model.gain_to(BodyLocation.EAR)
        assert throat > mandible > ear > 0.0

    def test_segment_gain_is_exponential(self):
        model = PropagationModel()
        assert model.segment_gain(16.0, 0.08) == pytest.approx(math.exp(-16.0 * 0.08))

    def test_ear_gain_composes_segments(self):
        model = PropagationModel()
        expected = model.segment_gain(
            model.alpha_tissue, model.throat_to_mandible_m
        ) * model.segment_gain(model.alpha_bone, model.mandible_to_ear_m)
        assert model.gain_to(BodyLocation.EAR) == pytest.approx(expected)

    def test_mandible_to_ear_ratio_matches_paper(self):
        """Paper Fig. 1: std 1050 at the mandible vs 761 at the ear."""
        model = PropagationModel()
        ratio = model.gain_to(BodyLocation.MANDIBLE) / model.gain_to(BodyLocation.EAR)
        assert ratio == pytest.approx(1050 / 761, rel=0.05)


class TestBonePathDominance:
    def test_default_bone_path_dominates(self):
        """The paper's feasibility condition: mandible-borne vibration is
        the main component at the ear."""
        assert PropagationModel().bone_path_dominates()

    def test_dense_tissue_can_flip_dominance(self):
        model = PropagationModel(alpha_tissue=5.0, alpha_bone=4.9)
        # Nearly equal attenuation: the shorter direct path wins.
        assert not model.bone_path_dominates()


class TestValidation:
    def test_bone_must_attenuate_less(self):
        with pytest.raises(ConfigError):
            PropagationModel(alpha_tissue=4.0, alpha_bone=16.0)

    def test_rejects_negative_distance(self):
        with pytest.raises(ConfigError):
            PropagationModel(mandible_to_ear_m=-0.01)

    def test_rejects_zero_alpha(self):
        with pytest.raises(ConfigError):
            PropagationModel(alpha_tissue=0.0, alpha_bone=-1.0)

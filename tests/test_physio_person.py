"""PersonProfile and population sampling tests."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.physio import sample_population
from repro.physio.person import PersonProfile
from repro.types import Gender


class TestPersonProfile:
    def test_natural_frequency_formula(self, population):
        person = population[0]
        f_nat = np.sqrt((person.k1 + person.k2) / person.mass) / (2 * np.pi)
        assert person.natural_frequency_hz == pytest.approx(f_nat)

    def test_damping_ratios_positive_and_distinct(self, population):
        for person in population:
            assert person.damping_ratio_pos > 0
            assert person.damping_ratio_neg > 0
            assert person.c1 != person.c2

    def test_coupling_vectors_are_unit(self, population):
        for person in population:
            for vec in (
                person.accel_coupling,
                person.tissue_coupling,
                person.gyro_coupling,
                person.gyro_coupling2,
            ):
                assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_coupling_vectors_readonly(self, population):
        with pytest.raises(ValueError):
            population[0].accel_coupling[0] = 5.0

    def test_biomechanical_vector_order(self, population):
        person = population[0]
        vec = person.biomechanical_vector()
        assert vec.tolist() == [
            person.mass, person.c1, person.c2, person.k1, person.k2,
        ]

    def test_rejects_negative_mass(self, population):
        with pytest.raises(ConfigError):
            dataclasses.replace(population[0], mass=-0.1)

    def test_rejects_out_of_range_f0(self, population):
        with pytest.raises(ConfigError):
            dataclasses.replace(population[0], f0_hz=500.0)

    def test_rejects_zero_coupling(self, population):
        with pytest.raises(ConfigError):
            dataclasses.replace(population[0], accel_coupling=np.zeros(3))


class TestDrift:
    def test_zero_days_is_identity(self, population, rng):
        person = population[0]
        drifted = person.with_drift(0.0, rng)
        assert drifted.c1 == pytest.approx(person.c1)
        assert drifted.f0_hz == pytest.approx(person.f0_hz)

    def test_two_weeks_drift_is_small(self, population, rng):
        person = population[0]
        drifted = person.with_drift(14.0, rng)
        assert abs(np.log(drifted.c1 / person.c1)) < 0.1
        assert abs(np.log(drifted.f0_hz / person.f0_hz)) < 0.1

    def test_bone_parameters_never_drift(self, population, rng):
        person = population[0]
        drifted = person.with_drift(14.0, rng)
        assert drifted.mass == person.mass
        assert drifted.k1 == person.k1
        assert drifted.k2 == person.k2

    def test_rejects_negative_days(self, population, rng):
        with pytest.raises(ConfigError):
            population[0].with_drift(-1.0, rng)


class TestPopulation:
    def test_deterministic_given_seed(self):
        a = sample_population(5, 1, seed=3)
        b = sample_population(5, 1, seed=3)
        for pa, pb in zip(a, b):
            assert pa.mass == pb.mass
            assert pa.f0_hz == pb.f0_hz

    def test_different_seeds_differ(self):
        a = sample_population(5, 1, seed=3)
        b = sample_population(5, 1, seed=4)
        assert any(pa.mass != pb.mass for pa, pb in zip(a, b))

    def test_paper_composition(self):
        pop = sample_population()
        assert len(pop) == 34
        females = [p for p in pop if p.gender is Gender.FEMALE]
        assert len(females) == 6

    def test_gender_f0_ordering(self):
        pop = sample_population(60, 30, seed=0)
        male_f0 = np.mean([p.f0_hz for p in pop if p.gender is Gender.MALE])
        female_f0 = np.mean([p.f0_hz for p in pop if p.gender is Gender.FEMALE])
        assert female_f0 > male_f0 + 20

    def test_unique_ids(self):
        pop = sample_population(20, 4, seed=0)
        assert len({p.person_id for p in pop}) == 20

    def test_natural_frequencies_in_observable_band(self):
        pop = sample_population(50, 10, seed=1)
        for person in pop:
            assert 50.0 < person.natural_frequency_hz < 150.0

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigError):
            sample_population(0)
        with pytest.raises(ConfigError):
            sample_population(5, 6)

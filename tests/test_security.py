"""Cancelable templates, enclave, and attacker model tests (Section VI)."""

import numpy as np
import pytest

from repro.core.similarity import cosine_distance
from repro.errors import (
    ConfigError,
    EnclaveSealedError,
    ShapeError,
    TemplateRevokedError,
)
from repro.imu import Recorder
from repro.security import (
    CancelableTransform,
    ImpersonationAttacker,
    ReplayAttacker,
    SecureEnclave,
    VibrationAwareAttacker,
    ZeroEffortAttacker,
)


class TestCancelableTransform:
    def test_same_matrix_preserves_geometry(self, rng):
        """Random projection approximately preserves cosine distances."""
        transform = CancelableTransform(256, seed=0)
        u = rng.normal(size=256)
        v = u + 0.3 * rng.normal(size=256)
        original = cosine_distance(u, v)
        projected = cosine_distance(transform.apply(u), transform.apply(v))
        assert projected == pytest.approx(original, abs=0.1)

    def test_different_matrices_decorrelate(self, rng):
        """The same vector under two matrices is near-orthogonal: the
        core of the replay defence."""
        t1 = CancelableTransform(256, seed=0)
        t2 = t1.renew()
        v = rng.normal(size=256)
        distance = cosine_distance(t1.apply(v), t2.apply(v))
        assert distance > 0.7

    def test_renew_changes_seed_deterministically(self):
        t1 = CancelableTransform(64, seed=5)
        t2 = t1.renew()
        assert t1.seed != t2.seed
        assert CancelableTransform(64, seed=5).renew().seed == t2.seed

    def test_batch_application(self, rng):
        transform = CancelableTransform(32, seed=1)
        batch = rng.normal(size=(10, 32))
        out = transform.apply(batch)
        assert out.shape == (10, 32)
        np.testing.assert_allclose(out[3], transform.apply(batch[3]))

    def test_output_dim_override(self, rng):
        transform = CancelableTransform(32, output_dim=16, seed=1)
        assert transform.apply(rng.normal(size=32)).shape == (16,)

    def test_matrix_not_writable(self):
        transform = CancelableTransform(8, seed=0)
        with pytest.raises(ValueError):
            transform.matrix[0, 0] = 99.0

    def test_norm_preserved_in_expectation(self, rng):
        transform = CancelableTransform(512, seed=0)
        v = rng.normal(size=512)
        ratio = np.linalg.norm(transform.apply(v)) / np.linalg.norm(v)
        assert 0.8 < ratio < 1.2

    def test_rejects_wrong_dim(self, rng):
        with pytest.raises(ShapeError):
            CancelableTransform(32, seed=0).apply(rng.normal(size=16))

    def test_equality_by_seed(self):
        assert CancelableTransform(8, seed=1) == CancelableTransform(8, seed=1)
        assert CancelableTransform(8, seed=1) != CancelableTransform(8, seed=2)


class TestSecureEnclave:
    def test_seal_unseal_round_trip(self, rng):
        enclave = SecureEnclave()
        template = rng.normal(size=16)
        enclave.seal("alice", template, transform_seed=3)
        record = enclave.unseal("alice")
        np.testing.assert_array_equal(record.template, template)
        assert record.transform_seed == 3

    def test_unknown_user_raises(self):
        with pytest.raises(EnclaveSealedError):
            SecureEnclave().unseal("ghost")

    def test_unauthorized_access_raises_and_logged(self, rng):
        enclave = SecureEnclave()
        enclave.seal("alice", rng.normal(size=4), 0)
        with pytest.raises(EnclaveSealedError):
            enclave.unseal("alice", authorized=False)
        log = enclave.audit_log()
        assert any(not entry.authorized for entry in log)

    def test_revoked_slot_raises(self, rng):
        enclave = SecureEnclave()
        enclave.seal("alice", rng.normal(size=4), 0)
        enclave.revoke("alice")
        with pytest.raises(TemplateRevokedError):
            enclave.unseal("alice")

    def test_revoke_unknown_raises(self):
        with pytest.raises(EnclaveSealedError):
            SecureEnclave().revoke("ghost")

    def test_sealed_template_immutable(self, rng):
        enclave = SecureEnclave()
        enclave.seal("alice", rng.normal(size=4), 0)
        with pytest.raises(ValueError):
            enclave.unseal("alice").template[0] = 1.0

    def test_template_nbytes(self, rng):
        enclave = SecureEnclave()
        enclave.seal("alice", rng.normal(size=512), 0)
        # Paper: a cancelable template consumes ~1.8-2 KB.
        assert enclave.template_nbytes("alice") == 2048

    def test_reseal_replaces(self, rng):
        enclave = SecureEnclave()
        enclave.seal("alice", np.zeros(4), 0)
        enclave.seal("alice", np.ones(4), 1)
        np.testing.assert_array_equal(enclave.unseal("alice").template, np.ones(4))


class TestAttackers:
    def test_zero_effort_has_no_vibration(self, population):
        from repro.dsp.detection import has_vibration

        attacker = ZeroEffortAttacker(Recorder(seed=1))
        forged = attacker.forge_recording(population[0])
        assert forged.shape == (210, 6)
        assert not has_vibration(forged)

    def test_vibration_aware_produces_real_vibration(self, population):
        from repro.dsp.detection import has_vibration

        attacker = VibrationAwareAttacker(Recorder(seed=1))
        forged = attacker.forge_recording(population[0])
        assert has_vibration(forged)

    def test_impersonator_copies_voice_not_anatomy(self, population, rng):
        attacker_person, victim = population[0], population[1]
        imp = ImpersonationAttacker(Recorder(seed=1), mimicry_error=0.0)
        mimic = imp.mimic_profile(attacker_person, victim, rng)
        assert mimic.f0_hz == pytest.approx(victim.f0_hz)
        assert mimic.duty_cycle == pytest.approx(victim.duty_cycle)
        # Mandible biomechanics stay the attacker's own.
        assert mimic.mass == attacker_person.mass
        assert mimic.k1 == attacker_person.k1
        assert mimic.c1 == attacker_person.c1

    def test_impersonator_mimicry_error_bounds(self, population, rng):
        imp = ImpersonationAttacker(Recorder(seed=1), mimicry_error=0.05)
        mimic = imp.mimic_profile(population[0], population[1], rng)
        assert abs(np.log(mimic.f0_hz / population[1].f0_hz)) < 0.25

    def test_impersonator_rejects_negative_error(self):
        with pytest.raises(ConfigError):
            ImpersonationAttacker(Recorder(seed=1), mimicry_error=-0.1)

    def test_replay_attacker_stores_and_returns(self, rng):
        replay = ReplayAttacker()
        template = rng.normal(size=8)
        replay.steal("alice", template)
        assert replay.has_stolen("alice")
        np.testing.assert_array_equal(replay.stolen_template("alice"), template)

    def test_replay_without_theft_raises(self):
        with pytest.raises(ConfigError):
            ReplayAttacker().stolen_template("alice")

"""Enrollment, verification and the MandiPass facade."""

import numpy as np
import pytest

from repro.core.enrollment import build_template, enroll_user
from repro.core.frontend import make_frontend
from repro.core.verification import verify_presented_vector
from repro.dsp.pipeline import Preprocessor
from repro.errors import (
    EnrollmentError,
    TemplateRevokedError,
    VerificationError,
)
from repro.imu import Recorder
from repro.security.cancelable import CancelableTransform


@pytest.fixture(scope="module")
def enrolled(mandipass_system, population):
    """Enroll person 1 ('alice') on the shared system."""
    recorder = Recorder(seed=77)
    alice = population[1]
    recordings = [recorder.record(alice, trial_index=i) for i in range(5)]
    used = mandipass_system.enroll("alice", recordings)
    assert used >= 3
    return mandipass_system, alice, recorder


class TestEnrollment:
    def test_empty_recordings_rejected(self, trained_model):
        fe = make_frontend("spectral")
        with pytest.raises(EnrollmentError):
            enroll_user(
                "x", trained_model, Preprocessor(), fe, [],
                CancelableTransform(trained_model.config.embedding_dim, seed=0),
            )

    def test_silent_recordings_rejected(self, trained_model):
        fe = make_frontend("spectral")
        silent = [np.zeros((210, 6))]
        with pytest.raises(EnrollmentError):
            build_template(trained_model, Preprocessor(), fe, silent)

    def test_template_dimension(self, trained_model, population):
        recorder = Recorder(seed=3)
        fe = make_frontend("spectral")
        recs = [recorder.record(population[2], trial_index=i) for i in range(3)]
        template, used = build_template(trained_model, Preprocessor(), fe, recs)
        assert template.shape == (trained_model.config.embedding_dim,)
        assert used == 3


class TestVerification:
    def test_genuine_accepted(self, enrolled):
        system, alice, recorder = enrolled
        result = system.verify("alice", recorder.record(alice, trial_index=50))
        assert result.accepted
        assert result.distance < result.threshold

    def test_impostor_rejected(self, enrolled, population):
        system, _, recorder = enrolled
        impostor = population[4]
        result = system.verify("alice", recorder.record(impostor, trial_index=50))
        assert not result.accepted

    def test_silent_probe_rejected_not_raised(self, enrolled):
        system, _, _ = enrolled
        result = system.verify("alice", np.zeros((210, 6)))
        assert not result.accepted
        assert result.distance == 2.0

    def test_unenrolled_user_raises(self, enrolled):
        system, _, recorder = enrolled
        with pytest.raises(VerificationError):
            system.verify("nobody", np.zeros((210, 6)))

    def test_presented_template_matches_itself(self, enrolled):
        system, _, _ = enrolled
        stolen = system.stored_template("alice")
        result = system.verify_presented("alice", stolen)
        assert result.accepted  # replay works before revocation...

    def test_presented_vector_helper(self, rng):
        template = rng.normal(size=32)
        ok = verify_presented_vector("u", template, template, threshold=0.45)
        assert ok.accepted
        bad = verify_presented_vector("u", rng.normal(size=32), template, 0.45)
        assert bad.distance > 0.1


class TestRevocationRenewal:
    def test_revoked_template_unusable(self, trained_model, population):
        from repro.config import MandiPassConfig, SecurityConfig
        from repro import MandiPass

        config = MandiPassConfig(
            extractor=trained_model.config,
            security=SecurityConfig(
                template_dim=trained_model.config.embedding_dim,
                projected_dim=trained_model.config.embedding_dim,
                matrix_seed=3,
            ),
        )
        system = MandiPass(trained_model, config=config)
        recorder = Recorder(seed=5)
        person = population[2]
        recs = [recorder.record(person, trial_index=i) for i in range(4)]
        system.enroll("bob", recs)
        system.revoke("bob")
        with pytest.raises((TemplateRevokedError, VerificationError)):
            system.verify("bob", recorder.record(person, trial_index=9))

    def test_renew_defeats_stolen_template(self, trained_model, population):
        """Section VI: after the Gaussian matrix changes, the stolen
        cancelable template no longer verifies."""
        from repro.config import MandiPassConfig, SecurityConfig
        from repro import MandiPass

        config = MandiPassConfig(
            extractor=trained_model.config,
            security=SecurityConfig(
                template_dim=trained_model.config.embedding_dim,
                projected_dim=trained_model.config.embedding_dim,
                matrix_seed=11,
            ),
        )
        system = MandiPass(trained_model, config=config)
        recorder = Recorder(seed=6)
        person = population[3]
        recs = [recorder.record(person, trial_index=i) for i in range(4)]
        system.enroll("carol", recs)
        stolen = system.stored_template("carol").copy()

        system.renew("carol", recs)
        replay = system.verify_presented("carol", stolen)
        assert not replay.accepted

        # The legitimate user still verifies after renewal.
        genuine = system.verify("carol", recorder.record(person, trial_index=30))
        assert genuine.accepted

    def test_storage_accounting(self, enrolled):
        system, _, _ = enrolled
        model_only = system.storage_nbytes()
        with_template = system.storage_nbytes("alice")
        assert with_template > model_only
        # Paper: total under 6 MB for the full-size model; our small test
        # model just needs to be consistent.
        assert with_template - model_only == system.enclave.template_nbytes("alice")

"""Property-based hardening of every fusion rule (hypothesis).

Covers both halves of :mod:`repro.core.fusion`: the multi-probe rules
(``fuse_mean_distance`` / ``fuse_min_distance`` / ``fuse_majority``)
and the multi-modal rules (``fuse_score_level`` /
``fuse_decision_level`` / ``calibrated_fusion_weights``), plus the
analytical :func:`fused_error_rates` helper against a brute-force
empirical simulation.

The invariants here are the contracts the scenario matrix and
``MandiPass.verify_fused`` lean on: permutation invariance (no rule may
care about probe order), monotonicity (worsening any component score
must never improve the fused score), idempotence (fusing N copies of
one result changes nothing), and bounds.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.fusion import (
    calibrated_fusion_weights,
    fuse_decision_level,
    fuse_majority,
    fuse_mean_distance,
    fuse_min_distance,
    fuse_score_level,
    fused_error_rates,
)
from repro.types import VerificationResult

MULTI_PROBE_RULES = (fuse_mean_distance, fuse_min_distance, fuse_majority)
DECISION_RULES = ("and", "or", "vote")

distances = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
thresholds = st.floats(min_value=0.05, max_value=1.9, allow_nan=False)
weights_st = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)


def _result(distance: float, threshold: float = 0.5) -> VerificationResult:
    return VerificationResult(
        accepted=distance <= threshold,
        distance=float(distance),
        threshold=float(threshold),
        user_id="u",
    )


def _modal_results(ds, ts) -> list[VerificationResult]:
    return [_result(d, t) for d, t in zip(ds, ts)]


class TestMultiProbeProperties:
    @given(st.lists(distances, min_size=1, max_size=7), st.randoms())
    def test_permutation_invariance(self, ds, rand):
        results = [_result(d) for d in ds]
        shuffled = list(results)
        rand.shuffle(shuffled)
        for rule in MULTI_PROBE_RULES:
            a, b = rule(results), rule(shuffled)
            assert a.accepted == b.accepted
            assert a.distance == pytest.approx(b.distance, abs=1e-12)

    @given(distances, thresholds, st.integers(1, 7))
    def test_idempotence(self, d, t, n):
        # Averaging N copies reintroduces float roundoff (~1 ulp), which
        # can flip acceptance exactly at the boundary d == t.
        assume(abs(d - t) > 1e-9)
        single = _result(d, t)
        for rule in MULTI_PROBE_RULES:
            fused = rule([single] * n)
            assert fused.accepted == single.accepted
            assert fused.distance == pytest.approx(single.distance)
            assert fused.threshold == single.threshold

    @given(
        st.lists(distances, min_size=2, max_size=6),
        st.data(),
    )
    def test_monotone_in_each_probe(self, ds, data):
        """Raising one probe's distance never lowers the fused score."""
        index = data.draw(st.integers(0, len(ds) - 1))
        bump = data.draw(st.floats(1e-6, 0.5))
        worse = list(ds)
        worse[index] = min(2.0, worse[index] + bump)
        for rule in (fuse_mean_distance, fuse_min_distance):
            before = rule([_result(d) for d in ds]).distance
            after = rule([_result(d) for d in worse]).distance
            assert after >= before - 1e-12

    @given(st.lists(distances, min_size=1, max_size=7))
    def test_majority_votes_match_count(self, ds):
        fused = fuse_majority([_result(d) for d in ds])
        votes = sum(d <= 0.5 for d in ds)
        assert fused.accepted == (votes * 2 > len(ds))


class TestMultiModalProperties:
    @given(
        st.lists(st.tuples(distances, thresholds), min_size=1, max_size=4),
        st.randoms(),
    )
    def test_score_level_permutation_invariance(self, pairs, rand):
        results = _modal_results(*zip(*pairs))
        ws = [1.0 + i for i in range(len(results))]
        order = list(range(len(results)))
        rand.shuffle(order)
        a = fuse_score_level(results, weights=ws)
        b = fuse_score_level(
            [results[i] for i in order], weights=[ws[i] for i in order]
        )
        assert a.accepted == b.accepted
        assert a.distance == pytest.approx(b.distance, abs=1e-12)

    @given(
        st.lists(st.tuples(distances, thresholds), min_size=1, max_size=4),
        st.randoms(),
    )
    def test_decision_level_permutation_invariance(self, pairs, rand):
        results = _modal_results(*zip(*pairs))
        ws = [1.0 + i for i in range(len(results))]
        order = list(range(len(results)))
        rand.shuffle(order)
        for rule in DECISION_RULES:
            a = fuse_decision_level(results, rule=rule, weights=ws)
            b = fuse_decision_level(
                [results[i] for i in order],
                rule=rule,
                weights=[ws[i] for i in order],
            )
            assert a.accepted == b.accepted
            assert a.distance == pytest.approx(b.distance, abs=1e-12)

    @given(distances, thresholds, st.integers(1, 4))
    def test_idempotence_across_modal_rules(self, d, t, n):
        assume(abs(d - t) > 1e-9)  # roundoff can flip the exact boundary
        single = _result(d, t)
        copies = [single] * n
        score = fuse_score_level(copies)
        assert score.accepted == single.accepted
        assert score.distance == pytest.approx(d / t)
        for rule in DECISION_RULES:
            fused = fuse_decision_level(copies, rule=rule)
            assert fused.accepted == single.accepted
            assert fused.distance == pytest.approx(d / t)

    @given(
        st.lists(st.tuples(distances, thresholds), min_size=2, max_size=4),
        st.data(),
    )
    def test_score_level_strictly_monotone(self, pairs, data):
        """The weighted mean must move when any one distance moves."""
        index = data.draw(st.integers(0, len(pairs) - 1))
        bump = data.draw(st.floats(1e-3, 0.5))
        ds, ts = map(list, zip(*pairs))
        before = fuse_score_level(_modal_results(ds, ts)).distance
        ds[index] = ds[index] + bump
        after = fuse_score_level(_modal_results(ds, ts)).distance
        assert after > before

    @given(st.lists(st.tuples(distances, thresholds), min_size=1, max_size=4))
    def test_and_at_most_or_accepts(self, pairs):
        """AND acceptance implies OR acceptance; fused distances order."""
        results = _modal_results(*zip(*pairs))
        fused_and = fuse_decision_level(results, rule="and")
        fused_or = fuse_decision_level(results, rule="or")
        if fused_and.accepted:
            assert fused_or.accepted
        assert fused_or.distance <= fused_and.distance + 1e-12

    @given(
        st.lists(st.tuples(distances, thresholds), min_size=1, max_size=4),
        st.lists(weights_st, min_size=1, max_size=4),
    )
    def test_score_level_bounded_by_components(self, pairs, ws):
        if len(ws) != len(pairs):
            ws = (ws * len(pairs))[: len(pairs)]
        results = _modal_results(*zip(*pairs))
        fused = fuse_score_level(results, weights=ws)
        norms = [r.distance / r.threshold for r in results]
        assert min(norms) - 1e-9 <= fused.distance <= max(norms) + 1e-9

    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 1.0, allow_nan=False),
                st.floats(0.0, 1.0, allow_nan=False),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_calibrated_weights_positive_and_ordered(self, rates):
        ws = calibrated_fusion_weights(rates)
        assert len(ws) == len(rates)
        assert all(w > 0.0 for w in ws)
        errs = [(far + frr) / 2.0 for far, frr in rates]
        # A strictly better modality never gets a smaller weight.
        for i in range(len(rates)):
            for j in range(len(rates)):
                if errs[i] < errs[j]:
                    assert ws[i] >= ws[j] - 1e-12


class TestAnalyticalVsEmpirical:
    """``fused_error_rates`` against brute-force Bernoulli simulation."""

    @pytest.mark.parametrize("rule", ["all", "any", "majority"])
    @pytest.mark.parametrize("num_probes", [1, 2, 3, 5])
    def test_matches_simulation(self, rule, num_probes):
        frr, far = 0.12, 0.07
        rng = np.random.default_rng(20260808)
        trials = 40_000
        genuine_rejects = (
            rng.random((trials, num_probes)) < frr
        )  # True = probe rejects a genuine user
        impostor_accepts = rng.random((trials, num_probes)) < far
        genuine_accepts = ~genuine_rejects
        if rule == "all":
            fused_acc_genuine = genuine_accepts.all(axis=1)
            fused_acc_impostor = impostor_accepts.all(axis=1)
        elif rule == "any":
            fused_acc_genuine = genuine_accepts.any(axis=1)
            fused_acc_impostor = impostor_accepts.any(axis=1)
        else:
            fused_acc_genuine = genuine_accepts.sum(axis=1) * 2 > num_probes
            fused_acc_impostor = impostor_accepts.sum(axis=1) * 2 > num_probes
        expected_frr, expected_far = fused_error_rates(
            frr, far, num_probes, rule=rule
        )
        assert float((~fused_acc_genuine).mean()) == pytest.approx(
            expected_frr, abs=0.01
        )
        assert float(fused_acc_impostor.mean()) == pytest.approx(
            expected_far, abs=0.01
        )

    @given(
        st.floats(0.0, 1.0, allow_nan=False),
        st.floats(0.0, 1.0, allow_nan=False),
        st.integers(1, 9),
        st.sampled_from(["all", "any", "majority"]),
    )
    def test_rates_stay_probabilities(self, frr, far, n, rule):
        fused_frr, fused_far = fused_error_rates(frr, far, n, rule=rule)
        assert 0.0 <= fused_frr <= 1.0
        assert 0.0 <= fused_far <= 1.0

    @given(st.floats(0.01, 0.49), st.floats(0.01, 0.49), st.integers(1, 4))
    def test_all_and_any_are_duals(self, frr, far, n):
        """Swapping the rule swaps the roles of the two error rates."""
        frr_all, far_all = fused_error_rates(frr, far, n, rule="all")
        frr_any, far_any = fused_error_rates(far, frr, n, rule="any")
        assert frr_all == pytest.approx(far_any, abs=1e-12)
        assert far_all == pytest.approx(frr_any, abs=1e-12)

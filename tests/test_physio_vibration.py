"""Mandible oscillator tests."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.physio.vibration import MandibleOscillator


def _impulse(steps: int, at: int = 10, amplitude: float = 1.0) -> np.ndarray:
    forcing = np.zeros(steps)
    forcing[at] = amplitude
    return forcing


class TestSimulation:
    RATE = 2800.0

    def test_rest_stays_at_rest(self, population):
        osc = MandibleOscillator(population[0])
        disp, vel, acc = osc.simulate(np.zeros(500), self.RATE)
        assert np.all(disp == 0.0) and np.all(vel == 0.0) and np.all(acc == 0.0)

    def test_impulse_response_decays(self, population):
        osc = MandibleOscillator(population[0])
        disp, _, _ = osc.simulate(_impulse(2000), self.RATE)
        early = np.max(np.abs(disp[:400]))
        late = np.max(np.abs(disp[-400:]))
        assert late < 0.3 * early

    def test_impulse_rings_near_natural_frequency(self, population):
        person = population[1]
        osc = MandibleOscillator(person)
        disp, _, _ = osc.simulate(_impulse(4000), self.RATE)
        spectrum = np.abs(np.fft.rfft(disp))
        freqs = np.fft.rfftfreq(disp.size, 1.0 / self.RATE)
        peak = freqs[np.argmax(spectrum[1:]) + 1]
        # Damped frequency is slightly below the undamped natural one.
        assert peak == pytest.approx(person.natural_frequency_hz, rel=0.15)

    def test_positive_homogeneity(self, population):
        """Scaling the force scales the trajectory exactly (c(x') depends
        only on the sign of velocity)."""
        osc = MandibleOscillator(population[0])
        forcing = np.sin(np.linspace(0, 30, 1500))
        d1, v1, a1 = osc.simulate(forcing, self.RATE)
        d2, v2, a2 = osc.simulate(3.0 * forcing, self.RATE)
        np.testing.assert_allclose(d2, 3.0 * d1, rtol=1e-9)
        np.testing.assert_allclose(a2, 3.0 * a1, rtol=1e-9)

    def test_asymmetric_damping_breaks_odd_symmetry(self, population):
        """With c1 != c2, responses to +F and -F are not mirror images."""
        person = population[0]
        assert person.c1 != person.c2
        osc = MandibleOscillator(person)
        forcing = _impulse(2000, amplitude=1.0)
        d_pos, _, _ = osc.simulate(forcing, self.RATE)
        d_neg, _, _ = osc.simulate(-forcing, self.RATE)
        assert not np.allclose(d_neg, -d_pos, rtol=1e-3)

    def test_symmetric_damping_keeps_odd_symmetry(self, population):
        person = dataclasses.replace(population[0], c2=population[0].c1)
        osc = MandibleOscillator(person)
        forcing = _impulse(2000)
        d_pos, _, _ = osc.simulate(forcing, self.RATE)
        d_neg, _, _ = osc.simulate(-forcing, self.RATE)
        np.testing.assert_allclose(d_neg, -d_pos, rtol=1e-9)

    def test_batch_matches_single(self, population):
        osc = MandibleOscillator(population[0])
        f1 = np.sin(np.linspace(0, 20, 800))
        f2 = np.cos(np.linspace(0, 15, 800))
        batch = np.stack([f1, f2])
        bd, bv, ba = osc.simulate_batch(batch, self.RATE)
        sd, sv, sa = osc.simulate(f1, self.RATE)
        np.testing.assert_allclose(bd[0], sd)
        np.testing.assert_allclose(ba[0], sa)

    def test_rejects_undersampled_rate(self, population):
        osc = MandibleOscillator(population[0])
        with pytest.raises(ConfigError):
            osc.simulate(np.zeros(100), 100.0)

    def test_rejects_2d_forcing_in_single(self, population):
        osc = MandibleOscillator(population[0])
        with pytest.raises(ShapeError):
            osc.simulate(np.zeros((2, 100)), self.RATE)


class TestSignedForcing:
    def test_direction_follows_duty_cycle(self, population):
        person = population[0]
        osc = MandibleOscillator(person)
        phase = np.linspace(0.0, 0.999, 1000)
        pulses = np.ones(1000)
        force = osc.signed_forcing(pulses, phase)
        positive = phase < person.duty_cycle
        assert np.all(force[positive] >= 0.0)
        assert np.all(force[~positive] <= 0.0)

    def test_amplitudes_match_person(self, population):
        person = population[0]
        osc = MandibleOscillator(person)
        phase = np.array([0.01, 0.99])
        force = osc.signed_forcing(np.ones(2), phase)
        assert force[0] == pytest.approx(person.force_pos)
        assert force[1] == pytest.approx(-person.force_neg)

    def test_shape_mismatch_raises(self, population):
        osc = MandibleOscillator(population[0])
        with pytest.raises(ShapeError):
            osc.signed_forcing(np.ones(5), np.zeros(6))


class TestFrequencyResponse:
    def test_peak_near_natural_frequency(self, population):
        person = population[0]
        osc = MandibleOscillator(person)
        freqs = np.linspace(10, 200, 1000)
        resp = osc.frequency_response(freqs)
        peak = freqs[np.argmax(resp)]
        assert peak == pytest.approx(person.natural_frequency_hz, rel=0.1)

    def test_direction_changes_response(self, population):
        osc = MandibleOscillator(population[0])
        freqs = np.array([population[0].natural_frequency_hz])
        pos = osc.frequency_response(freqs, "positive")
        neg = osc.frequency_response(freqs, "negative")
        assert pos[0] != neg[0]

    def test_rejects_unknown_direction(self, population):
        osc = MandibleOscillator(population[0])
        with pytest.raises(ConfigError):
            osc.frequency_response(np.array([50.0]), "sideways")

    def test_acceleration_gain_positive(self, population):
        osc = MandibleOscillator(population[0])
        assert osc.acceleration_gain(population[0].f0_hz) > 0.0

"""Streaming-vs-batch bitwise equivalence (DESIGN.md §4j).

The contract under test: every streaming primitive in
:mod:`repro.stream` produces *bit-identical* float64 outputs to its
batch counterpart for **any** partition of the input into chunks —
including 1-sample chunks and uneven tails.  No tolerances anywhere in
this file: every comparison is exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PreprocessConfig, StreamConfig
from repro.dsp.detection import detect_onset
from repro.dsp.filters import design_highpass, normalized_sections, sosfilt
from repro.dsp.normalize import min_max_normalize
from repro.dsp.pipeline import Preprocessor
from repro.errors import OnsetNotFoundError
from repro.stream import (
    SegmentAssembler,
    StreamingMinMaxNormalizer,
    StreamingOnsetDetector,
    StreamingSOSFilter,
    StreamSession,
)

# Chunk-size lists; the stream is cut by cycling through them, so a
# single-element list like [7] also exercises the uneven final tail.
chunk_plans = st.lists(st.integers(1, 97), min_size=1, max_size=12)


def cuts(total: int, plan: list[int]) -> list[tuple[int, int]]:
    """Partition ``[0, total)`` by cycling through ``plan`` sizes."""
    spans, pos, i = [], 0, 0
    while pos < total:
        take = min(plan[i % len(plan)], total - pos)
        spans.append((pos, pos + take))
        pos += take
        i += 1
    return spans


@pytest.fixture(scope="module")
def bench_system():
    from repro.serve.loadgen import build_bench_system

    return build_bench_system(num_probes=6)


class TestStreamingFilter:
    @given(chunk_plans, st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_chunked_equals_batch_1d(self, plan, seed):
        rng = np.random.default_rng(seed)
        signal = rng.normal(size=rng.integers(1, 400))
        sos = design_highpass(4, 20.0, 350.0)
        batch = sosfilt(sos, signal)
        stream = StreamingSOSFilter(sos)
        out = np.concatenate(
            [stream.push(signal[a:b]) for a, b in cuts(signal.size, plan)]
        )
        assert out.shape == batch.shape
        assert np.array_equal(out, batch)

    @given(chunk_plans, st.integers(0, 2**32 - 1))
    @settings(max_examples=30)
    def test_chunked_equals_batch_multichannel(self, plan, seed):
        rng = np.random.default_rng(seed)
        signal = rng.normal(size=(3, int(rng.integers(1, 300))))
        sos = design_highpass(4, 20.0, 350.0)
        batch = sosfilt(sos, signal)
        stream = StreamingSOSFilter(sos, batch_shape=(3,))
        out = np.concatenate(
            [stream.push(signal[:, a:b]) for a, b in cuts(signal.shape[1], plan)],
            axis=-1,
        )
        assert np.array_equal(out, batch)

    def test_one_sample_chunks(self):
        rng = np.random.default_rng(3)
        signal = rng.normal(size=120)
        sos = design_highpass(4, 20.0, 350.0)
        stream = StreamingSOSFilter(sos)
        out = np.concatenate([stream.push(signal[i : i + 1]) for i in range(120)])
        assert np.array_equal(out, sosfilt(sos, signal))

    def test_reset_restores_zero_state(self):
        rng = np.random.default_rng(4)
        signal = rng.normal(size=64)
        sos = design_highpass(4, 20.0, 350.0)
        stream = StreamingSOSFilter(sos)
        first = stream.push(signal)
        stream.reset()
        assert stream.samples_seen == 0
        assert np.array_equal(stream.push(signal), first)

    def test_shares_batch_coefficient_normalisation(self):
        # Both paths must consume the exact same normalised sections;
        # a second normalisation pass would divide twice.
        sos = design_highpass(4, 20.0, 350.0) * 2.0
        sections = normalized_sections(sos)
        assert all(len(s) == 5 for s in sections)
        rng = np.random.default_rng(5)
        signal = rng.normal(size=50)
        stream = StreamingSOSFilter(sos)
        assert np.array_equal(stream.push(signal), sosfilt(sos, signal))


class TestStreamingOnsetDetector:
    @given(plan=chunk_plans, trial=st.integers(0, 200))
    @settings(max_examples=30)
    def test_recorded_vibrations(self, population, recorder, plan, trial):
        recording = recorder.record(
            population[trial % len(population)], trial_index=trial
        )
        config = PreprocessConfig()
        batch_onset = detect_onset(recording, config)
        detector = StreamingOnsetDetector(config)
        onset = None
        for a, b in cuts(recording.shape[0], plan):
            onset = detector.push(recording[a:b])
            if onset is not None:
                break
        if onset is None:
            onset = detector.finish()
        assert onset == batch_onset

    @given(chunk_plans, st.integers(0, 2**32 - 1))
    @settings(max_examples=30)
    def test_synthetic_and_quiet_streams(self, plan, seed):
        # Mixed population: bursts that trigger the rule, near-silence
        # that must not — the streaming verdict must match batch
        # detection *including* the not-found case.
        rng = np.random.default_rng(seed)
        n = int(rng.integers(30, 400))
        recording = rng.normal(scale=50.0, size=(n, 6))
        if rng.random() < 0.7:
            at = int(rng.integers(0, max(n - 40, 1)))
            recording[at : at + 40] += rng.normal(
                scale=2000.0, size=(min(40, n - at), 6)
            )
        config = PreprocessConfig()
        try:
            expected = detect_onset(recording, config)
        except OnsetNotFoundError:
            expected = None
        detector = StreamingOnsetDetector(config)
        onset = None
        for a, b in cuts(n, plan):
            onset = detector.push(recording[a:b])
            if onset is not None:
                break
        if onset is None:
            onset = detector.finish()
        assert onset == expected

    def test_one_sample_chunks(self, recording):
        batch_onset = detect_onset(recording)
        detector = StreamingOnsetDetector()
        onset = None
        for i in range(recording.shape[0]):
            onset = detector.push(recording[i : i + 1])
            if onset is not None:
                break
        assert onset == batch_onset

    def test_onset_is_latched(self, recording):
        detector = StreamingOnsetDetector()
        onset = detector.push(recording)
        assert onset is not None
        # Further pushes and finish() keep reporting the same onset.
        assert detector.push(recording[:5]) == onset
        assert detector.finish() == onset


class TestStreamingNormalizer:
    @given(chunk_plans, st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_chunked_extrema_equal_batch(self, plan, seed):
        rng = np.random.default_rng(seed)
        segment = rng.normal(size=(6, int(rng.integers(2, 200))))
        batch = min_max_normalize(segment, axis=-1)
        norm = StreamingMinMaxNormalizer()
        for a, b in cuts(segment.shape[1], plan):
            norm.push(segment[:, a:b])
        assert np.array_equal(norm.normalize(segment), batch)

    def test_constant_axis_maps_to_zero(self):
        segment = np.vstack([np.full(30, 7.0), np.arange(30.0)])
        norm = StreamingMinMaxNormalizer()
        norm.push(segment)
        out = norm.normalize(segment)
        assert np.array_equal(out, min_max_normalize(segment, axis=-1))
        assert np.all(out[0] == 0.0)


class TestSegmentAssembler:
    @given(plan=chunk_plans, trial=st.integers(0, 30))
    @settings(max_examples=20)
    def test_stages_match_batch_pipeline(self, population, recorder, plan, trial):
        recording = recorder.record(
            population[trial % len(population)], trial_index=trial + 500
        )
        config = PreprocessConfig()
        debug = Preprocessor(config).process_debug(recording)
        tail = recording[debug.onset :]
        assembler = SegmentAssembler(config)
        for a, b in cuts(tail.shape[0], plan):
            assembler.push(tail[a:b])
            if assembler.complete:
                break
        assert assembler.complete
        assert np.array_equal(assembler.despiked(), debug.despiked)
        assert np.array_equal(assembler.filtered(), debug.filtered)
        assert np.array_equal(assembler.normalized(), debug.normalized)
        assert assembler.passes_gate()


class TestEndToEndSession:
    """The headline property: the final VerificationResult is bitwise
    equal to the batch pipeline's, for every tested chunk partition."""

    @given(plan=chunk_plans, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15)
    def test_decision_bitwise_equals_batch_verify(
        self, bench_system, plan, seed
    ):
        system, user_id, probes = bench_system
        probe = probes[seed % len(probes)]
        batch = system.verify(user_id, probe)
        session = StreamSession(
            user_id,
            system=system,
            config=StreamConfig(cooldown_samples=10**9),
        )
        decisions = []
        for a, b in cuts(probe.shape[0], plan):
            decisions += session.push(probe[a:b])
        decisions += session.close()
        assert len(decisions) == 1
        result = decisions[0].result
        assert result is not None
        assert result.distance == batch.distance
        assert result.accepted == batch.accepted
        assert result.threshold == batch.threshold

    def test_one_sample_chunks_end_to_end(self, bench_system):
        system, user_id, probes = bench_system
        probe = probes[0]
        batch = system.verify(user_id, probe)
        session = StreamSession(
            user_id,
            system=system,
            config=StreamConfig(cooldown_samples=10**9),
        )
        decisions = []
        for i in range(probe.shape[0]):
            decisions += session.push(probe[i : i + 1])
        decisions += session.close()
        assert len(decisions) == 1
        assert decisions[0].result.distance == batch.distance

    def test_partition_invariance_across_plans(self, bench_system):
        # Two arbitrary partitions of the same stream: identical
        # decisions, onsets, windows, and state traces.
        system, user_id, probes = bench_system
        stream = np.concatenate([probes[0], probes[1]], axis=0)
        outcomes = []
        for plan in ([1], [35], [17, 3, 94]):
            session = StreamSession(
                user_id,
                system=system,
                config=StreamConfig(cooldown_samples=105),
            )
            decisions = []
            for a, b in cuts(stream.shape[0], plan):
                decisions += session.push(stream[a:b])
            decisions += session.close()
            outcomes.append(
                (
                    [
                        (d.onset, d.window_start, d.window_end, d.result.distance)
                        for d in decisions
                    ],
                    session.trace,
                )
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]

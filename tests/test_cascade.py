"""Early-exit cascade (:mod:`repro.cascade`, DESIGN.md §4k).

Covers the four pieces and their integration surface:

* ``CascadeConfig`` validation (inverted bands rejected);
* ``ExitPolicy`` band routing + deterministic audit sampling, with a
  hypothesis property pinning band-widening monotonicity;
* ``Stage1Gate`` scorers (features / cnn) and lifecycle;
* post-training quantization (int8 / float16) bounds and the
  ``QuantizedExtractor`` stage-2 protocol;
* the system facade: disabled-default bitwise parity, exit-provenance
  accounting, forced-full audit parity, stage-1 fault fallback, and
  the serving / streaming integration points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.cascade import (
    ROUTE_ACCEPT,
    ROUTE_BORDERLINE,
    ROUTE_FORCED,
    ROUTE_REJECT,
    ExitPolicy,
    QuantizedExtractor,
    Stage1Gate,
    calibrate_cascade,
    quantize_state,
)
from repro.config import (
    CascadeConfig,
    ExtractorConfig,
    InferenceConfig,
    MandiPassConfig,
    SecurityConfig,
    StreamConfig,
)
from repro.core.extractor import TwoBranchExtractor
from repro.core.system import MandiPass
from repro.errors import ConfigError, ModelError, VerificationError
from repro.faults.plan import FaultPlan, FaultRule
from repro.imu import Recorder
from repro.physio import sample_population

#: Band that exits essentially everything on the synthetic substrate
#: (genuine z-scores land near 1, impostors near 6).
TIGHT_BAND = {"t_accept": 1.2, "t_reject": 2.5}


def build_system(
    stage1: str = "features",
    enabled: bool = True,
    quantization: str = "none",
    **cascade_kwargs,
) -> MandiPass:
    extractor_config = ExtractorConfig(embedding_dim=64, channels=(4, 8, 16))
    config = MandiPassConfig(
        extractor=extractor_config,
        security=SecurityConfig(
            template_dim=64, projected_dim=64, matrix_seed=1
        ),
        inference=InferenceConfig(stage2_quantization=quantization),
        cascade=CascadeConfig(
            enabled=enabled, stage1=stage1, **cascade_kwargs
        ),
    )
    model = TwoBranchExtractor(
        extractor_config, num_classes=4, seed=0
    ).eval()
    return MandiPass(model, config=config)


@pytest.fixture(scope="module")
def probes():
    """(enroll, genuine, impostor) recording pools, deterministic."""
    population = sample_population(4, 1, seed=0)
    recorder = Recorder(seed=1)
    enroll = [recorder.record(population[0], trial_index=i) for i in range(4)]
    genuine = [
        recorder.record(population[0], trial_index=10 + i) for i in range(6)
    ]
    impostor = [
        recorder.record(population[1 + i % 3], trial_index=10 + i)
        for i in range(6)
    ]
    return enroll, genuine, impostor


# -- config validation ----------------------------------------------------


class TestCascadeConfig:
    def test_disabled_by_default(self):
        assert CascadeConfig().enabled is False

    def test_inverted_band_rejected(self):
        with pytest.raises(ConfigError, match="inverted exit band"):
            CascadeConfig(t_accept=0.8, t_reject=0.2)

    def test_degenerate_band_allowed(self):
        CascadeConfig(t_accept=0.5, t_reject=0.5)

    def test_unknown_stage1_rejected(self):
        with pytest.raises(ConfigError):
            CascadeConfig(stage1="transformer")

    def test_forced_fraction_bounds(self):
        with pytest.raises(ConfigError):
            CascadeConfig(forced_full_fraction=1.5)


# -- exit policy ----------------------------------------------------------


class TestExitPolicy:
    def test_band_routing_with_inclusive_edges(self):
        policy = ExitPolicy(
            CascadeConfig(enabled=True, t_accept=1.0, t_reject=2.0)
        )
        routes = policy.route(np.array([0.2, 1.0, 1.5, 2.0, 9.0]))
        assert routes.tolist() == [
            ROUTE_ACCEPT,
            ROUTE_ACCEPT,
            ROUTE_BORDERLINE,
            ROUTE_REJECT,
            ROUTE_REJECT,
        ]

    def test_degenerate_band_accept_edge_wins(self):
        policy = ExitPolicy(
            CascadeConfig(enabled=True, t_accept=1.0, t_reject=1.0)
        )
        assert policy.route(np.array([1.0]))[0] == ROUTE_ACCEPT

    def test_forced_stride_is_deterministic_and_batch_invariant(self):
        config = CascadeConfig(
            enabled=True, t_accept=1.0, t_reject=2.0,
            forced_full_fraction=0.5,
        )
        scores = np.full(8, 0.1)  # all would exit as accepts
        one_batch = ExitPolicy(config).route(scores)
        split = ExitPolicy(config)
        two_batches = np.concatenate(
            [split.route(scores[:3]), split.route(scores[3:])]
        )
        assert one_batch.tolist() == two_batches.tolist()
        assert int((one_batch == ROUTE_FORCED).sum()) == 4

    def test_forced_fraction_one_forces_everything(self):
        policy = ExitPolicy(
            CascadeConfig(
                enabled=True, t_accept=1.0, t_reject=2.0,
                forced_full_fraction=1.0,
            )
        )
        assert (policy.route(np.array([0.1, 1.5, 9.0])) == ROUTE_FORCED).all()

    def test_retune_revalidates(self):
        policy = ExitPolicy(CascadeConfig(enabled=True))
        policy.retune(0.3, 1.1)
        assert (policy.t_accept, policy.t_reject) == (0.3, 1.1)
        with pytest.raises(ConfigError, match="inverted exit band"):
            policy.retune(1.1, 0.3)
        # a failed retune leaves the previous band installed
        assert (policy.t_accept, policy.t_reject) == (0.3, 1.1)


class TestExitMonotonicity:
    """Widening the borderline band never flips a surviving exit."""

    @given(
        scores=st.lists(
            st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=32
        ),
        t_accept=st.floats(0.0, 5.0, allow_nan=False),
        gap=st.floats(0.0, 5.0, allow_nan=False),
        widen_accept=st.floats(0.0, 5.0, allow_nan=False),
        widen_reject=st.floats(0.0, 5.0, allow_nan=False),
    )
    def test_widening_only_moves_probes_into_stage2(
        self, scores, t_accept, gap, widen_accept, widen_reject
    ):
        t_reject = t_accept + gap
        narrow = ExitPolicy(
            CascadeConfig(
                enabled=True, t_accept=t_accept, t_reject=t_reject
            )
        )
        wide = ExitPolicy(
            CascadeConfig(
                enabled=True,
                t_accept=max(0.0, t_accept - widen_accept),
                t_reject=t_reject + widen_reject,
            )
        )
        values = np.asarray(scores)
        narrow_routes = narrow.route(values)
        wide_routes = wide.route(values)
        # Every exit that survives the widening keeps its decision;
        # the only other legal transition is exit -> borderline.
        surviving = wide_routes != ROUTE_BORDERLINE
        assert (wide_routes[surviving] == narrow_routes[surviving]).all()
        moved = wide_routes != narrow_routes
        assert (wide_routes[moved] == ROUTE_BORDERLINE).all()


# -- stage-1 scorers ------------------------------------------------------


class TestStage1Gate:
    def _signals(self, system, recordings):
        signals, _, _, _ = system.preprocessor.process_batch_detailed(
            recordings,
            min_usable_axes=system.config.resilience.min_usable_axes,
        )
        return signals

    def test_features_scorer_separates_population(self, probes):
        enroll, genuine, impostor = probes
        system = build_system("features")
        system.enroll("alice", enroll)
        gate = system.cascade_gate
        assert gate.has_user("alice")
        genuine_scores = gate.scores("alice", self._signals(system, genuine))
        impostor_scores = gate.scores("alice", self._signals(system, impostor))
        assert genuine_scores.max() < impostor_scores.min()

    def test_cnn_scorer_bounded_cosine(self, probes):
        enroll, genuine, _ = probes
        system = build_system("cnn")
        system.enroll("alice", enroll)
        scores = system.cascade_gate.scores(
            "alice", self._signals(system, genuine)
        )
        assert np.isfinite(scores).all()
        assert (scores >= 0.0).all() and (scores <= 2.0).all()

    def test_fit_requires_signals(self):
        system = build_system()
        with pytest.raises(VerificationError):
            system.cascade_gate.fit_user("alice", np.empty((0, 6, 105)))

    def test_unknown_user_raises(self, probes):
        _, genuine, _ = probes
        system = build_system()
        with pytest.raises(VerificationError):
            system.cascade_gate.scores(
                "nobody", self._signals(system, genuine)
            )

    def test_revoke_drops_gate_reference(self, probes):
        enroll, _, _ = probes
        system = build_system()
        system.enroll("alice", enroll)
        assert system.cascade_gate.has_user("alice")
        system.revoke("alice")
        assert not system.cascade_gate.has_user("alice")


# -- quantization ---------------------------------------------------------


class TestQuantization:
    def test_int8_roundtrip_error_bounded_per_channel(self):
        model = TwoBranchExtractor(
            ExtractorConfig(embedding_dim=64, channels=(4, 8, 16)),
            num_classes=4,
            seed=0,
        )
        state = model.state_dict()
        quantized = quantize_state(state, "int8")
        for name, original in state.items():
            tensor = quantized[name]
            recovered = tensor.dequantize()
            if original.ndim >= 2:
                assert tensor.data.dtype == np.int8
                flat = original.reshape(original.shape[0], -1)
                bound = np.abs(flat).max(axis=1) / 127.0 * 0.5 + 1e-12
                err = np.abs(recovered - original).reshape(
                    original.shape[0], -1
                ).max(axis=1)
                assert (err <= bound).all()
            else:
                # 1-D params are stored as float32 under the int8 scheme
                np.testing.assert_allclose(
                    recovered, original, rtol=1e-6, atol=1e-7
                )

    def test_unknown_scheme_rejected(self):
        model = TwoBranchExtractor(
            ExtractorConfig(embedding_dim=64, channels=(4, 8, 16)),
            num_classes=4,
            seed=0,
        )
        with pytest.raises(ModelError):
            quantize_state(model.state_dict(), "int4")

    def test_extractor_protocol_and_compression(self):
        model = TwoBranchExtractor(
            ExtractorConfig(embedding_dim=64, channels=(4, 8, 16)),
            num_classes=4,
            seed=0,
        ).eval()
        for scheme, min_ratio in (("int8", 3.0), ("float16", 1.9)):
            quantized = QuantizedExtractor(model, scheme)
            ratio = model.storage_nbytes() / quantized.storage_nbytes()
            assert ratio >= min_ratio
            assert quantized.training is False
            assert quantized.eval() is quantized
            with pytest.raises(ModelError):
                quantized.train()

    def test_quantized_embeddings_track_float(self, probes):
        enroll, genuine, _ = probes
        baseline = build_system(enabled=False)
        baseline.enroll("alice", enroll)
        base = baseline.verify_many("alice", genuine)
        for scheme, tolerance in (("int8", 0.05), ("float16", 1e-2)):
            system = build_system(enabled=False, quantization=scheme)
            system.enroll("alice", enroll)
            results = system.verify_many("alice", genuine)
            drift = max(
                abs(q.distance - b.distance) for q, b in zip(results, base)
            )
            assert drift < tolerance

    def test_engine_rejects_unknown_quantization(self):
        with pytest.raises(ConfigError):
            build_system(enabled=False, quantization="int4")


# -- system facade --------------------------------------------------------


class TestCascadeSystem:
    def test_disabled_is_bitwise_identical(self, probes):
        enroll, genuine, impostor = probes
        plain = build_system(enabled=False)
        disabled = build_system(enabled=False)
        plain.enroll("alice", enroll)
        disabled.enroll("alice", enroll)
        queue = genuine + impostor
        for a, b in zip(
            plain.verify_many("alice", queue),
            disabled.verify_many("alice", queue),
        ):
            assert a.distance == b.distance
            assert a.accepted == b.accepted
            assert b.exit_stage == "full"

    def test_all_borderline_band_matches_full_pipeline(self, probes):
        enroll, genuine, impostor = probes
        system = build_system(t_accept=0.0, t_reject=1e9)
        system.enroll("alice", enroll)
        queue = genuine + impostor
        cascade = system.verify_many("alice", queue)
        full = system.verify_many("alice", queue, full_pipeline=True)
        for c, f in zip(cascade, full):
            assert c.distance == f.distance
            assert c.accepted == f.accepted
            assert c.exit_stage == "stage2"
            assert f.exit_stage == "full"

    def test_exit_accounting_covers_every_probe(self, probes):
        enroll, genuine, impostor = probes
        system = build_system(**TIGHT_BAND)
        system.enroll("alice", enroll)
        queue = genuine + impostor + [np.zeros((210, 6))]
        with obs.collecting() as registry:
            results = system.verify_many("alice", queue)
            snapshot = registry.to_dict()
        exits = {
            key.split('stage="', 1)[1].rstrip('"}'): int(value)
            for key, value in snapshot["counters"].items()
            if key.startswith("cascade_exits_total{stage=")
        }
        assert sum(exits.values()) == len(queue)
        assert exits.get("stage1_accept", 0) >= len(genuine) - 1
        assert exits.get("stage1_reject", 0) >= len(impostor) - 1
        assert exits.get("refused", 0) == 1
        stages = [r.exit_stage for r in results]
        assert stages[-1] == "refused"
        assert set(stages) <= {"stage1", "stage2", "refused"}

    def test_stage1_exits_decide_correctly(self, probes):
        enroll, genuine, impostor = probes
        system = build_system(**TIGHT_BAND)
        system.enroll("alice", enroll)
        for result in system.verify_many("alice", genuine):
            if result.exit_stage == "stage1":
                assert result.accepted
        for result in system.verify_many("alice", impostor):
            if result.exit_stage == "stage1":
                assert not result.accepted

    def test_forced_full_audit_matches_full_pipeline(self, probes):
        enroll, genuine, impostor = probes
        system = build_system(forced_full_fraction=1.0, **TIGHT_BAND)
        system.enroll("alice", enroll)
        queue = genuine + impostor
        forced = system.verify_many("alice", queue)
        full = system.verify_many("alice", queue, full_pipeline=True)
        for a, b in zip(forced, full):
            assert a.exit_stage == "stage2_forced"
            assert a.distance == b.distance
            assert a.accepted == b.accepted

    def test_stage1_fault_degrades_to_full_pipeline(self, probes):
        enroll, genuine, impostor = probes
        system = build_system(**TIGHT_BAND)
        system.enroll("alice", enroll)
        queue = genuine + impostor
        baseline = system.verify_many("alice", queue, full_pipeline=True)
        rule = FaultRule("cascade.stage1", "error")
        with obs.collecting() as registry:
            with FaultPlan([rule], seed=0).active():
                degraded = system.verify_many("alice", queue)
            snapshot = registry.to_dict()
        for d, b in zip(degraded, baseline):
            assert d.exit_stage == "full"
            assert d.distance == b.distance
            assert d.accepted == b.accepted
        key = 'cascade_exits_total{stage="fallback_full"}'
        assert snapshot["counters"][key] == len(queue)

    def test_retune_requires_enabled_cascade(self, probes):
        system = build_system(enabled=False)
        with pytest.raises(ConfigError):
            system.retune_cascade(0.1, 2.0)
        enabled = build_system()
        enabled.retune_cascade(0.9, 3.0)
        assert enabled.cascade_policy.t_accept == 0.9

    def test_model_bytes_gauges_published(self):
        with obs.collecting() as registry:
            build_system(enabled=False, quantization="int8")
            snapshot = registry.to_dict()
        gauges = snapshot["gauges"]
        float_bytes = gauges['model_bytes{dtype="float32"}']
        int8_bytes = gauges['model_bytes{dtype="int8"}']
        assert float_bytes > int8_bytes > 0


# -- calibration ----------------------------------------------------------


class TestCalibration:
    def test_calibrated_band_is_feasible_on_substrate(self, probes):
        enroll, genuine, impostor = probes
        system = build_system(epsilon_far=0.25, epsilon_frr=0.25)
        system.enroll("alice", enroll)
        calibration = calibrate_cascade(
            system, "alice", genuine, impostor, grid_size=6
        )
        assert calibration.feasible
        assert 0.0 <= calibration.exit_fraction <= 1.0
        assert calibration.t_reject >= calibration.t_accept
        assert calibration.points
        system.retune_cascade(calibration.t_accept, calibration.t_reject)
        results = system.verify_many("alice", genuine + impostor)
        assert all(r.exit_stage in ("stage1", "stage2") for r in results)


# -- serving integration --------------------------------------------------


class TestServeCascade:
    def test_full_pipeline_requests_batch_separately(self):
        from repro.serve.server import ServeRequest

        def request(full_pipeline):
            return ServeRequest(
                kind="verify",
                user_id="alice",
                recording=None,
                future=None,
                deadline=None,
                submitted_at=0.0,
                full_pipeline=full_pipeline,
            )

        assert request(False).key != request(True).key
        assert request(False).key == request(False).key

    def test_server_threads_full_pipeline_flag(self, probes):
        from repro.serve import AuthServer

        enroll, genuine, _ = probes
        system = build_system(**TIGHT_BAND)
        system.enroll("alice", enroll)
        server = AuthServer(system).start()
        try:
            via_stage1 = server.verify("alice", genuine[0]).result(timeout=30)
            bypassed = server.verify(
                "alice", genuine[0], full_pipeline=True
            ).result(timeout=30)
        finally:
            server.stop()
        assert via_stage1.exit_stage == "stage1"
        assert bypassed.exit_stage == "full"
        assert via_stage1.accepted and bypassed.accepted


# -- streaming integration ------------------------------------------------


class TestStreamStage1:
    def test_clear_windows_decided_locally(self, probes):
        from repro.stream import StreamSession

        enroll, genuine, _ = probes
        system = build_system(**TIGHT_BAND)
        system.enroll("alice", enroll)
        stream = np.concatenate(genuine[:3], axis=0)
        config = StreamConfig(cooldown_samples=105, local_stage1=True)
        with obs.collecting() as registry:
            session = StreamSession("alice", system=system, config=config)
            decisions = []
            for pos in range(0, stream.shape[0], config.chunk_size):
                decisions += session.push(
                    stream[pos : pos + config.chunk_size]
                )
            decisions += session.close()
            snapshot = registry.to_dict()
        assert decisions
        local_exits = sum(
            int(value)
            for key, value in snapshot["counters"].items()
            if key.startswith("stream_stage1_exits_total")
        )
        assert local_exits >= 1
        for decision in decisions:
            if decision.result is not None:
                assert decision.result.accepted
                assert decision.result.exit_stage in ("stage1", "stage2")

    def test_local_stage1_off_uses_backend_path(self, probes):
        from repro.stream import StreamSession

        enroll, genuine, _ = probes
        system = build_system(**TIGHT_BAND)
        system.enroll("alice", enroll)
        stream = np.concatenate(genuine[:2], axis=0)
        config = StreamConfig(cooldown_samples=105, local_stage1=False)
        with obs.collecting() as registry:
            session = StreamSession("alice", system=system, config=config)
            decisions = []
            for pos in range(0, stream.shape[0], config.chunk_size):
                decisions += session.push(
                    stream[pos : pos + config.chunk_size]
                )
            decisions += session.close()
            snapshot = registry.to_dict()
        assert decisions
        assert not any(
            key.startswith("stream_stage1_exits_total")
            for key in snapshot["counters"]
        )

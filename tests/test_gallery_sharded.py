"""The sharded gallery subsystem: shards, log, cascade, concurrency.

Four layers of coverage:

* **units** — :class:`MutationLog` FIFO/pop-after-apply semantics,
  :class:`GalleryShard` row mutations (append, overwrite-in-place,
  tombstone, build-then-swap compaction) and shape validation;
* **cascade exactness** — identify through the prescreen + rerank
  cascade is *bitwise* identical to per-user loop scoring: random
  galleries, lazy matrix providers, adversarially loose bounds
  (rank=1, top_k=1), distance ties, the zero-probe all-ties edge case,
  and decisions across revoke / renew / compaction;
* **facade integration** — the system facade's mutation helper feeds
  enroll / revoke / renew / adapt through the mutation log (no O(U)
  invalidation), and identify results track the surviving set;
* **concurrency** — interleaved enroll / revoke / identify threads:
  every decision stays bitwise-loop-exact for the stable population,
  and tombstoned users are never returned once their revocation
  synced.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import obs
from repro.config import GalleryConfig
from repro.core.gallery import (
    GalleryMutation,
    GalleryShard,
    MutationLog,
    ShardedGallery,
    TemplateGallery,
)
from repro.core.similarity import cosine_distance
from repro.errors import ShapeError

IN, OUT = 12, 10


def _matrix(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0 / np.sqrt(IN), size=(IN, OUT))


def _template(seed: int) -> np.ndarray:
    return np.random.default_rng(seed ^ 0x5EED).normal(size=OUT)


def _loop_best(probe, users):
    """The per-user dict-loop oracle: strict min, first enrolled wins."""
    probe = np.asarray(probe, dtype=np.float64)
    best = None
    for user_id, (matrix, template) in users.items():
        distance = cosine_distance(
            probe @ np.asarray(matrix, dtype=np.float64),
            np.asarray(template, dtype=np.float64).reshape(-1),
        )
        if best is None or distance < best[1]:
            best = (user_id, distance)
    return best


def _populated(num_users: int, config: GalleryConfig, lazy: bool = False):
    """(gallery, oracle dict) with ``num_users`` synthetic users."""
    gallery = ShardedGallery(config)
    users: dict[str, tuple] = {}
    for index in range(num_users):
        matrix, template = _matrix(index), _template(index)
        source = (lambda m=matrix: m) if lazy else matrix
        gallery.upsert(f"u{index}", source, template)
        users[f"u{index}"] = (matrix, template)
    gallery.sync()
    return gallery, users


def _assert_parity(gallery, users, probes):
    matches = gallery.best_match(probes)
    for probe, match in zip(np.atleast_2d(probes), matches):
        expected = _loop_best(probe, users)
        assert match.user_id == expected[0]
        assert match.distance == expected[1]  # bitwise, not approx


# -- mutation log ----------------------------------------------------------


class TestMutationLog:
    def test_fifo_and_pop_after_apply(self):
        log = MutationLog()
        log.append(GalleryMutation(kind="remove", user_id="a"))
        log.append(GalleryMutation(kind="remove", user_id="b"))
        assert len(log) == 2
        assert log.peek().user_id == "a"
        assert log.peek().user_id == "a"  # peek does not consume
        log.pop()
        assert log.peek().user_id == "b"
        log.pop()
        assert log.peek() is None
        log.pop()  # popping empty is harmless

    def test_concurrent_appends_all_land(self):
        log = MutationLog()
        threads = [
            threading.Thread(
                target=lambda: [
                    log.append(GalleryMutation(kind="remove", user_id="x"))
                    for _ in range(100)
                ]
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(log) == 400


# -- shard rows ------------------------------------------------------------


class TestGalleryShard:
    def test_append_overwrite_kill_compact(self):
        shard = GalleryShard(capacity=3, in_dim=IN, out_dim=OUT, rank=4)
        for index in range(3):
            assert shard.append(
                f"u{index}", _matrix(index), _template(index), seq=index
            ) == index
        assert not shard.has_space
        with pytest.raises(ShapeError):
            shard.append("u3", _matrix(3), _template(3), seq=3)
        # Overwrite in place keeps occupancy and identity.
        shard.write_slot(1, "u1", _matrix(7), _template(7), seq=1)
        assert shard.count == 3 and shard.num_alive == 3
        shard.kill_slot(1)
        assert shard.num_alive == 2 and shard.tombstones == 1
        assert shard.tombstone_ratio() == pytest.approx(1 / 3)
        # Tombstoned scoring state is zeroed so it cannot leak into gemms.
        assert not shard.numer_block()[:, 1].any()
        assert not shard.prescreen_block()[:, 4:8].any()
        with pytest.raises(ShapeError):
            shard.matrix_for(1)
        compacted = shard.compacted()
        assert compacted.count == 2 and compacted.tombstones == 0
        assert compacted.user_ids[:2] == ["u0", "u2"]
        assert list(compacted.seq[:2]) == [0, 2]  # seq survives the move
        # Build-then-swap: the original is untouched.
        assert shard.count == 3 and shard.tombstones == 1

    def test_shape_validation(self):
        shard = GalleryShard(capacity=2, in_dim=IN, out_dim=OUT, rank=4)
        with pytest.raises(ShapeError):
            shard.append("u", np.zeros((IN, OUT + 1)), _template(0), seq=0)
        with pytest.raises(ShapeError):
            shard.append("u", _matrix(0), np.zeros(OUT + 2), seq=0)
        with pytest.raises(ShapeError):
            GalleryShard(capacity=0, in_dim=IN, out_dim=OUT, rank=4)

    def test_rank_capped_at_out_dim(self):
        shard = GalleryShard(capacity=2, in_dim=IN, out_dim=OUT, rank=99)
        assert shard.rank == OUT


# -- cascade exactness -----------------------------------------------------


class TestCascadeExactness:
    CONFIG = GalleryConfig(shard_size=4, top_k=2, prescreen_rank=3)

    def test_bitwise_parity_with_loop(self):
        gallery, users = _populated(11, self.CONFIG)
        probes = np.random.default_rng(1).normal(size=(6, IN))
        _assert_parity(gallery, users, probes)

    def test_parity_with_lazy_matrix_providers(self):
        gallery, users = _populated(9, self.CONFIG, lazy=True)
        probes = np.random.default_rng(2).normal(size=(4, IN))
        _assert_parity(gallery, users, probes)

    def test_parity_under_adversarially_loose_bounds(self):
        # rank=1 makes the prescreen bound as weak as it can be and
        # top_k=1 the seed minimal: correctness must come entirely from
        # the soundness expansion, whatever the cost.
        gallery, users = _populated(
            13, GalleryConfig(shard_size=3, top_k=1, prescreen_rank=1)
        )
        probes = np.random.default_rng(3).normal(size=(5, IN))
        _assert_parity(gallery, users, probes)

    def test_distance_tie_first_enrolled_wins(self):
        gallery = ShardedGallery(self.CONFIG)
        matrix, template = _matrix(0), _template(0)
        # Identical rows: every distance ties bitwise; the loop keeps
        # the first enrolled, so must the cascade.
        for name in ("first", "second", "third"):
            gallery.upsert(name, matrix, template)
        probe = np.random.default_rng(4).normal(size=IN)
        assert gallery.best_match(probe)[0].user_id == "first"
        # After revoking the winner the tie resolves to the next oldest.
        gallery.remove("first")
        assert gallery.best_match(probe)[0].user_id == "second"

    def test_zero_probe_matches_loop(self):
        gallery, users = _populated(5, self.CONFIG)
        match = gallery.best_match(np.zeros(IN))[0]
        expected = _loop_best(np.zeros(IN), users)
        assert (match.user_id, match.distance) == expected
        assert match.distance == 1.0

    def test_zero_template_user_is_never_spuriously_matched(self):
        gallery, users = _populated(4, self.CONFIG)
        gallery.upsert("zero", _matrix(50), np.zeros(OUT))
        users["zero"] = (_matrix(50), np.zeros(OUT))
        probes = np.random.default_rng(5).normal(size=(3, IN))
        _assert_parity(gallery, users, probes)

    def test_revoked_user_never_returned(self):
        gallery, users = _populated(8, self.CONFIG)
        probes = np.random.default_rng(6).normal(size=(40, IN))
        for probe in probes:
            winner = gallery.best_match(probe)[0].user_id
            gallery.remove(winner)
            users.pop(winner)
            if not users:
                assert gallery.best_match(probe)[0] is None
                break
            _assert_parity(gallery, users, probe[None, :])

    def test_renew_overwrites_in_place(self):
        gallery, users = _populated(6, self.CONFIG)
        before = gallery.stats()
        gallery.upsert("u2", _matrix(77), _template(77))
        users["u2"] = (_matrix(77), _template(77))
        gallery.sync()
        after = gallery.stats()
        assert after["users"] == before["users"]
        assert after["shards"] == before["shards"]
        assert after["tombstones"] == before["tombstones"] == 0
        _assert_parity(
            gallery, users, np.random.default_rng(7).normal(size=(4, IN))
        )

    def test_compaction_preserves_decisions_bitwise(self):
        config = GalleryConfig(
            shard_size=4, top_k=2, prescreen_rank=3, compact_tombstone_ratio=0.2
        )
        gallery, users = _populated(12, config)
        probes = np.random.default_rng(8).normal(size=(5, IN))
        for victim in ("u1", "u2", "u5", "u9"):
            gallery.remove(victim)
            users.pop(victim)
        gallery.sync()
        assert gallery.compactions >= 1
        assert gallery.stats()["tombstones"] == 0
        _assert_parity(gallery, users, probes)

    def test_revoke_reenroll_moves_to_back_of_tie_order(self):
        gallery = ShardedGallery(self.CONFIG)
        matrix, template = _matrix(0), _template(0)
        for name in ("a", "b"):
            gallery.upsert(name, matrix, template)
        probe = np.random.default_rng(9).normal(size=IN)
        assert gallery.best_match(probe)[0].user_id == "a"
        # dict-order parity: pop + re-insert moves "a" behind "b".
        gallery.remove("a")
        gallery.upsert("a", matrix, template)
        assert gallery.best_match(probe)[0].user_id == "b"

    def test_empty_and_shape_errors(self):
        gallery = ShardedGallery(self.CONFIG)
        assert gallery.best_match(np.zeros((2, IN))) == [None, None]
        populated, _ = _populated(3, self.CONFIG)
        with pytest.raises(ShapeError):
            populated.best_match(np.zeros((1, IN + 1)))

    def test_score_threads_path_matches_inline(self):
        threaded, users = _populated(
            10,
            GalleryConfig(
                shard_size=3, top_k=2, prescreen_rank=3, score_threads=2
            ),
        )
        probes = np.random.default_rng(10).normal(size=(4, IN))
        _assert_parity(threaded, users, probes)
        threaded.close()
        threaded.close()  # idempotent

    def test_exact_distances_batch_matches_loop(self):
        gallery, users = _populated(7, self.CONFIG)
        probes = np.random.default_rng(11).normal(size=(3, IN))
        user_ids, distances = gallery.exact_distances_batch(probes)
        assert user_ids == [f"u{i}" for i in range(7)]
        for row, probe in enumerate(probes):
            for column, user_id in enumerate(user_ids):
                matrix, template = users[user_id]
                assert distances[row, column] == cosine_distance(
                    probe @ matrix, template
                )

    def test_users_listed_in_enrollment_order(self):
        gallery, _ = _populated(9, self.CONFIG)
        gallery.remove("u4")
        gallery.sync()
        assert gallery.users() == [
            f"u{i}" for i in range(9) if i != 4
        ]

    def test_sync_gauges_and_mutation_counters(self):
        with obs.collecting() as registry:
            gallery, _ = _populated(5, self.CONFIG)
            gallery.remove("u0")
            gallery.sync()
            assert registry.gauge("gallery_users").value == 4
            assert registry.gauge("gallery_shards").value == 2
            assert (
                registry.counter("gallery_mutations_total", kind="upsert").value
                == 5
            )
            assert (
                registry.counter("gallery_mutations_total", kind="remove").value
                == 1
            )

    def test_dense_gallery_still_importable_from_package(self):
        # The dense generation stays the exact full-scoring reference.
        matrices = [_matrix(i) for i in range(3)]
        templates = [_template(i) for i in range(3)]
        dense = TemplateGallery(
            user_ids=["a", "b", "c"], matrices=matrices, templates=templates
        )
        assert dense.num_users == 3


# -- facade integration ----------------------------------------------------


@pytest.fixture(scope="module")
def facade():
    from repro.serve.loadgen import build_bench_system

    return build_bench_system(
        dtype="float32",
        num_probes=6,
        gallery=GalleryConfig(shard_size=2, top_k=1, prescreen_rank=4),
    )


class TestFacadeIntegration:
    def test_mutations_are_incremental_not_invalidating(self, facade):
        system, user_id, probes = facade
        system.reset_gallery()
        assert system.identify_many(probes[:1])[0] is not None
        gallery = system._gallery
        system.enroll("incr", list(probes[:3]), transform_seed=601)
        # The instance survives the mutation (no invalidate-and-rebuild);
        # the change is a pending log entry until the next identify.
        assert system._gallery is gallery
        assert gallery.pending == 1
        system.identify_many(probes[:1])
        assert gallery.pending == 0
        assert "incr" in gallery.users()
        system.revoke("incr")
        assert system._gallery is gallery
        system.identify_many(probes[:1])
        assert "incr" not in gallery.users()

    def test_adapt_template_updates_gallery_row(self, facade):
        system, user_id, probes = facade
        system.reset_gallery()
        system.identify_many(probes[:1])
        gallery = system._gallery
        if system.adapt_template(user_id, probes[0], rate=0.2):
            assert system._gallery is gallery  # overwrite, not rebuild
            system.identify_many(probes[:1])
            row = gallery._index[user_id]
            stored = gallery._shards[row[0]].template_for(row[1])
            sealed = system.stored_template(user_id)
            np.testing.assert_array_equal(stored, sealed)

    def test_identify_matches_fallback_decisions(self, facade):
        # The degraded fallback replays the per-user *verify* pipeline,
        # whose dtype policy differs from the gallery's float64 scoring,
        # so distances agree to rounding — decisions must agree exactly.
        system, user_id, probes = facade
        system.reset_gallery()
        results = system.identify_many(list(probes[:4]))
        fallback = system._identify_fallback(list(probes[:4]))
        for fast, slow in zip(results, fallback):
            assert fast.user_id == slow.user_id
            assert fast.accepted == slow.accepted
            assert fast.distance == pytest.approx(slow.distance, rel=1e-9)

    def test_warm_gallery_prebuilds(self, facade):
        system, _, _ = facade
        system.reset_gallery()
        system.warm_gallery()
        assert system._gallery is not None
        assert system._gallery.pending == 0


# -- concurrency: interleaved enroll / revoke / identify -------------------


class TestConcurrentMutationVsIdentification:
    def test_interleaved_threads_stay_loop_exact(self):
        """Writers churn users while readers identify; decisions stay exact.

        A stable core population is constructed so each probe's true
        argmin is a core user (its template is the probe's own
        projection — distance exactly 0 for that pairing, ~1 for
        everything random).  Churn threads enroll/revoke disposable
        users concurrently with identify threads; whatever interleaving
        happens, every decision must be bitwise the loop answer for the
        stable set, and users revoked-and-synced *before* the readers
        started must never be returned.
        """
        config = GalleryConfig(
            shard_size=4, top_k=2, prescreen_rank=3,
            compact_tombstone_ratio=0.3,
        )
        gallery = ShardedGallery(config)
        rng = np.random.default_rng(42)
        probes = rng.normal(size=(8, IN))
        core: dict[str, tuple] = {}
        for index, probe in enumerate(probes):
            matrix = _matrix(1000 + index)
            template = np.asarray(probe, dtype=np.float64) @ matrix
            name = f"core{index}"
            gallery.upsert(name, matrix, template)
            core[name] = (matrix, template)
        expected = {
            index: _loop_best(probe, core)
            for index, probe in enumerate(probes)
        }
        # Pre-revoked users: tombstoned and synced before readers start.
        for index in range(4):
            gallery.upsert(f"dead{index}", _matrix(2000 + index), _template(index))
        gallery.sync()
        for index in range(4):
            gallery.remove(f"dead{index}")
        gallery.sync()
        forbidden = {f"dead{index}" for index in range(4)}

        stop = threading.Event()
        failures: list[str] = []

        def churn(worker: int) -> None:
            tick = 0
            while not stop.is_set():
                name = f"churn{worker}-{tick % 5}"
                try:
                    gallery.upsert(
                        name, _matrix(3000 + worker * 100 + tick), _template(tick)
                    )
                    gallery.sync()
                    gallery.remove(name)
                    gallery.sync()
                except Exception as exc:  # pragma: no cover - fails the test
                    failures.append(f"churn: {exc!r}")
                    return
                tick += 1

        def identify(reader: int) -> None:
            rounds = 0
            while not stop.is_set() and rounds < 60:
                index = (reader + rounds) % len(probes)
                try:
                    match = gallery.best_match(probes[index])[0]
                except Exception as exc:  # pragma: no cover - fails the test
                    failures.append(f"identify: {exc!r}")
                    return
                if match.user_id in forbidden:
                    failures.append(f"tombstoned user returned: {match.user_id}")
                    return
                if (match.user_id, match.distance) != expected[index]:
                    failures.append(
                        f"decision drift: {match} != {expected[index]}"
                    )
                    return
                rounds += 1

        writers = [threading.Thread(target=churn, args=(w,)) for w in range(2)]
        readers = [
            threading.Thread(target=identify, args=(r,)) for r in range(2)
        ]
        for thread in writers + readers:
            thread.start()
        for thread in readers:
            thread.join(30.0)
        stop.set()
        for thread in writers:
            thread.join(30.0)
        assert not failures, failures[:3]
        assert not any(t.is_alive() for t in writers + readers), "deadlock"
        # Steady state after the dust settles: core-only parity again.
        for index, probe in enumerate(probes):
            final = gallery.best_match(probe)[0]
            assert (final.user_id, final.distance) == expected[index]


# -- scale bench smoke (tiny tier-1 version of benchmarks/) ----------------


class TestBenchSmoke:
    def test_gallery_benchmark_tiny_sweep(self, tmp_path):
        from repro.core.gallery.bench import gallery_benchmark, write_results

        data = gallery_benchmark(
            quick=True,
            sizes=(40, 90),
            repeats=1,
            update_repeats=2,
            num_timing_probes=2,
            num_parity_probes=2,
        )
        assert data["claims"]["parity_bitwise_at_every_u"]
        assert data["claims"]["update_latency_flat_2x"] in (True, False)
        assert [p["num_users"] for p in data["sweep"]] == [40, 90]
        target = write_results(data, tmp_path / "BENCH_gallery.json")
        assert target.exists()

    def test_cli_gallery_bench(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main(
            ["gallery-bench", "--sizes", "40,90", "--output", str(out)]
        )
        captured = capsys.readouterr()
        assert "U=" in captured.out and "PASS" in captured.out
        assert out.exists()
        assert code in (0, 1)  # tiny sizes may not clear the speed bars


class TestGalleryConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shard_size": 0},
            {"top_k": 0},
            {"prescreen_rank": 0},
            {"prescreen_dtype": "float16"},
            {"compact_tombstone_ratio": 0.0},
            {"compact_tombstone_ratio": 1.5},
            {"score_threads": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            GalleryConfig(**kwargs)

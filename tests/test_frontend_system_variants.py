"""System-level tests with the paper's gradient front end.

The default deployment uses the spectral front end; these tests pin the
behaviour of the paper-exact variant end to end (configuration plumbing,
enrollment, verification), without claiming its EER matches.
"""

import numpy as np
import pytest

from repro import MandiPass, Recorder, TrainingConfig, train_extractor
from repro.config import ExtractorConfig, MandiPassConfig, SecurityConfig
from repro.datasets import DatasetSpec, generate_dataset
from repro.physio import sample_population


@pytest.fixture(scope="module")
def gradient_system():
    """A MandiPass device wired with the paper's gradient front end."""
    spec = DatasetSpec(
        num_people=8,
        num_female=2,
        trials_per_person=10,
        population_seed=100,
        recorder_seed=1,
        segment_offsets=(-4, 0, 4),
        frontend="gradient",
    )
    corpus = generate_dataset(spec)
    extractor_config = ExtractorConfig(
        embedding_dim=32, channels=(2, 4, 8), frontend="gradient", input_width=30
    )
    model, history = train_extractor(
        corpus.features,
        corpus.labels,
        extractor_config=extractor_config,
        training_config=TrainingConfig(epochs=8, batch_size=64),
    )
    config = MandiPassConfig(
        extractor=extractor_config,
        security=SecurityConfig(template_dim=32, projected_dim=32, matrix_seed=5),
    )
    return MandiPass(model, config=config), history


class TestGradientFrontEndSystem:
    def test_training_learns_something(self, gradient_system):
        _, history = gradient_system
        assert history.final_accuracy > 0.6

    def test_enroll_verify_round_trip(self, gradient_system):
        device, _ = gradient_system
        person = sample_population(6, 1, seed=0)[2]
        recorder = Recorder(seed=41)
        used = device.enroll(
            "gx", [recorder.record(person, trial_index=i) for i in range(5)]
        )
        assert used >= 3
        result = device.verify("gx", recorder.record(person, trial_index=42))
        # The gradient front end is weaker on this substrate (see
        # DESIGN.md 4b(1)); genuine distances must still sit clearly
        # below the impostor plateau (~1.0).
        assert result.distance < 0.8

    def test_feature_width_consistency(self, gradient_system):
        device, _ = gradient_system
        assert device.frontend.width(60) == 30
        assert device.model.config.input_width == 30

    def test_silent_probe_still_rejected(self, gradient_system):
        device, _ = gradient_system
        person = sample_population(6, 1, seed=0)[2]
        recorder = Recorder(seed=41)
        device.enroll(
            "gy", [recorder.record(person, trial_index=i) for i in range(4)]
        )
        result = device.verify("gy", np.zeros((210, 6)))
        assert not result.accepted

"""Instrumentation of the serving path, and failure attribution.

Two concerns share these tests:

* when a stage rejects (or is made to fail) for *one* item of a batch,
  the resulting ``BatchItemFailure`` must carry the right input index,
  error class and reason — and the ``failures_total{error=...}``
  counter must agree; stage exceptions are injected by monkeypatching
  the pipeline's stage functions one at a time;
* an instrumented ``verify_many``/``identify_many`` run must populate
  the documented metric families: per-stage latency histograms,
  batch-size histograms, decision counters and the dtype eval-cache
  hit/miss counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.config import ExtractorConfig, MandiPassConfig, SecurityConfig
from repro.core.engine import InferenceEngine
from repro.core.extractor import TwoBranchExtractor
from repro.core.frontend import make_frontend
from repro.core.system import MandiPass
from repro.dsp import pipeline as pipeline_module
from repro.dsp.pipeline import Preprocessor
from repro.errors import OnsetNotFoundError, SegmentTooShortError
from repro.obs.runtime import STAGE_LATENCY


@pytest.fixture(scope="module")
def engine():
    """Signal-capable engine on a deterministic untrained extractor."""
    config = ExtractorConfig(embedding_dim=64, channels=(4, 8, 16))
    model = TwoBranchExtractor(config, num_classes=4, seed=0).eval()
    return InferenceEngine(model, Preprocessor(), make_frontend("spectral"))


@pytest.fixture(scope="module")
def good_recordings(population, recorder):
    return [recorder.record(population[i % 4], trial_index=70 + i) for i in range(4)]


def _raise_on_call(real, target_call, exc):
    """Wrap ``real`` so its ``target_call``-th invocation (0-based) raises."""
    state = {"calls": 0}

    def wrapped(*args, **kwargs):
        call = state["calls"]
        state["calls"] += 1
        if call == target_call:
            raise exc
        return real(*args, **kwargs)

    return wrapped


class TestFailureAttribution:
    def test_onset_stage_exception(self, monkeypatch, engine, good_recordings):
        """Item 2's onset detection raises -> failure indexed and counted."""
        monkeypatch.setattr(
            pipeline_module,
            "detect_onset_from_signal",
            _raise_on_call(
                pipeline_module.detect_onset_from_signal,
                2,
                OnsetNotFoundError("injected onset failure"),
            ),
        )
        with obs.collecting() as registry:
            outcome = engine.embed(good_recordings)
        assert outcome.num_ok == 3
        assert list(outcome.indices) == [0, 1, 3]
        (failure,) = outcome.failures
        assert failure.index == 2
        assert failure.error == "OnsetNotFoundError"
        assert failure.reason == "injected onset failure"
        assert (
            registry.counter("failures_total", error="OnsetNotFoundError").value
            == 1.0
        )

    def test_segmentation_stage_exception(self, monkeypatch, engine, good_recordings):
        """Item 1's segmentation raises -> distinct error class attributed."""
        monkeypatch.setattr(
            pipeline_module,
            "segment_after_onset",
            _raise_on_call(
                pipeline_module.segment_after_onset,
                1,
                SegmentTooShortError("injected truncation"),
            ),
        )
        with obs.collecting() as registry:
            outcome = engine.embed(good_recordings)
        (failure,) = outcome.failures
        assert failure.index == 1
        assert failure.error == "SegmentTooShortError"
        assert failure.reason == "injected truncation"
        assert (
            registry.counter("failures_total", error="SegmentTooShortError").value
            == 1.0
        )
        assert registry.counter("failures_total", error="OnsetNotFoundError").value == 0

    def test_quality_gate_index_mapping(self, monkeypatch, engine, good_recordings):
        """The sustained-vibration gate must attribute the *original* index.

        Batch: [silent, good, good, good]; the silent item fails onset
        naturally, then the despiking stage is patched to flatten local
        row 1 — which is original item 2 once the earlier failure has
        shifted the bookkeeping.  A bug that reports the local row
        index would blame item 1.
        """
        real = pipeline_module.replace_outliers_batch

        def flatten_row_one(stacked, threshold):
            despiked = real(stacked, threshold=threshold)
            despiked[1] = 0.0
            return despiked

        monkeypatch.setattr(
            pipeline_module, "replace_outliers_batch", flatten_row_one
        )
        batch = [np.zeros((210, 6))] + list(good_recordings[:3])
        with obs.collecting() as registry:
            outcome = engine.embed(batch)
        assert outcome.num_ok == 2
        assert list(outcome.indices) == [1, 3]
        assert [f.index for f in outcome.failures] == [0, 2]
        assert all(f.error == "OnsetNotFoundError" for f in outcome.failures)
        assert "no sustained vibration" in outcome.failures[1].reason
        assert (
            registry.counter("failures_total", error="OnsetNotFoundError").value
            == 2.0
        )

    def test_extractor_stage_exception_is_not_swallowed(
        self, monkeypatch, engine, good_recordings
    ):
        """Whole-batch stages (frontend/extractor) must raise, not hide."""
        monkeypatch.setattr(
            engine.model,
            "embed",
            _raise_on_call(engine.model.embed, 0, RuntimeError("injected forward")),
        )
        with pytest.raises(RuntimeError, match="injected forward"):
            engine.embed(good_recordings)


@pytest.fixture(scope="module")
def obs_device(trained_model, population, recorder):
    config = MandiPassConfig(
        extractor=trained_model.config,
        security=SecurityConfig(
            template_dim=trained_model.config.embedding_dim,
            projected_dim=trained_model.config.embedding_dim,
            matrix_seed=11,
        ),
    )
    device = MandiPass(trained_model, config=config)
    device.enroll(
        "obs-user",
        [recorder.record(population[2], trial_index=80 + i) for i in range(5)],
    )
    return device


class TestServingPathMetrics:
    def test_verify_many_populates_metric_families(
        self, obs_device, population, recorder
    ):
        queue = [
            recorder.record(population[2], trial_index=90),  # genuine
            recorder.record(population[3], trial_index=90),  # impostor
            np.zeros((210, 6)),  # silent -> refusal
        ]
        with obs.collecting() as registry:
            results = obs_device.verify_many("obs-user", queue)
        snapshot = registry.to_dict()

        for stage in ("onset", "outlier", "filter", "normalize", "frontend",
                      "extractor", "verify"):
            series = f'{STAGE_LATENCY}{{stage="{stage}"}}'
            assert snapshot["histograms"][series]["count"] >= 1, stage

        assert snapshot["histograms"]['batch_size{op="verify_many"}']["sum"] == 3
        assert registry.counter("decisions_total", decision="refusal").value == 1
        accepted = registry.counter("decisions_total", decision="accept").value
        rejected = registry.counter("decisions_total", decision="reject").value
        assert accepted + rejected == 2
        assert accepted >= 1  # the genuine probe
        assert results[0].accepted and not results[2].accepted
        assert (
            registry.counter("failures_total", error="OnsetNotFoundError").value == 1
        )

    def test_identify_many_counts_decisions_and_gallery(
        self, obs_device, population, recorder
    ):
        queue = [
            recorder.record(population[2], trial_index=91),
            np.zeros((210, 6)),
        ]
        with obs.collecting() as registry:
            results = obs_device.identify_many(queue)
        snapshot = registry.to_dict()
        assert results[0] is not None and results[1] is None
        identify_series = f'{STAGE_LATENCY}{{stage="identify"}}'
        gallery_series = f'{STAGE_LATENCY}{{stage="gallery_score"}}'
        assert snapshot["histograms"][identify_series]["count"] == 1
        assert snapshot["histograms"][gallery_series]["count"] == 1
        assert registry.counter("decisions_total", decision="refusal").value == 1
        assert snapshot["gauges"]["gallery_users"] == 1.0

    def test_eval_cache_counters(self, population, recorder):
        """First float32 forward misses the per-dtype casts; reruns hit."""
        config = ExtractorConfig(embedding_dim=64, channels=(4, 8, 16))
        model = TwoBranchExtractor(config, num_classes=4, seed=3).eval()
        engine = InferenceEngine(
            model, Preprocessor(), make_frontend("spectral"),
            compute_dtype="float32",
        )
        batch = [recorder.record(population[0], trial_index=95 + i) for i in range(2)]
        with obs.collecting() as registry:
            engine.embed(batch)
            misses_after_first = registry.counter(
                "eval_cache_total", result="miss"
            ).value
            hits_after_first = registry.counter(
                "eval_cache_total", result="hit"
            ).value
            engine.embed(batch)
            misses_after_second = registry.counter(
                "eval_cache_total", result="miss"
            ).value
            hits_after_second = registry.counter(
                "eval_cache_total", result="hit"
            ).value
        assert misses_after_first > 0
        assert misses_after_second == misses_after_first  # casts stay warm
        assert hits_after_second > hits_after_first

    def test_metrics_enabled_config_switch(self, trained_model):
        previous = obs.get_registry()
        try:
            obs.disable()
            config = MandiPassConfig(
                extractor=trained_model.config,
                security=SecurityConfig(
                    template_dim=trained_model.config.embedding_dim,
                    projected_dim=trained_model.config.embedding_dim,
                ),
            )
            assert config.inference.metrics_enabled is False
            MandiPass(trained_model, config=config)
            assert obs.get_registry().enabled is False

            enabled = config.replace(
                inference=config.inference.__class__(metrics_enabled=True)
            )
            MandiPass(trained_model, config=enabled)
            assert obs.get_registry().enabled is True
        finally:
            obs.set_registry(previous if previous.enabled else None)

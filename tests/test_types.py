"""Shared type and validator tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.types import (
    AXIS_NAMES,
    VerificationResult,
    ensure_gradient_array,
    ensure_raw_recording,
    ensure_signal_array,
)


class TestAxisConventions:
    def test_axis_order_matches_paper(self):
        assert AXIS_NAMES == ("ax", "ay", "az", "gx", "gy", "gz")


class TestEnsureRawRecording:
    def test_accepts_n_by_6(self):
        out = ensure_raw_recording(np.zeros((10, 6)))
        assert out.shape == (10, 6)
        assert out.dtype == np.float64

    def test_rejects_wrong_width(self):
        with pytest.raises(ShapeError):
            ensure_raw_recording(np.zeros((10, 3)))

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            ensure_raw_recording(np.zeros(10))

    def test_casts_integer_input(self):
        out = ensure_raw_recording(np.ones((4, 6), dtype=np.int32))
        assert out.dtype == np.float64


class TestEnsureSignalArray:
    def test_accepts_6_by_n(self):
        assert ensure_signal_array(np.zeros((6, 60))).shape == (6, 60)

    def test_enforces_length_when_given(self):
        with pytest.raises(ShapeError):
            ensure_signal_array(np.zeros((6, 50)), n=60)

    def test_rejects_wrong_axis_count(self):
        with pytest.raises(ShapeError):
            ensure_signal_array(np.zeros((5, 60)))


class TestEnsureGradientArray:
    def test_accepts_2_6_m(self):
        assert ensure_gradient_array(np.zeros((2, 6, 30))).shape == (2, 6, 30)

    def test_rejects_wrong_direction_count(self):
        with pytest.raises(ShapeError):
            ensure_gradient_array(np.zeros((3, 6, 30)))


class TestVerificationResult:
    def test_holds_fields(self):
        res = VerificationResult(
            accepted=True, distance=0.1, threshold=0.45, user_id="alice"
        )
        assert res.accepted and res.user_id == "alice"

    def test_rejects_nan_distance(self):
        with pytest.raises(ValueError):
            VerificationResult(
                accepted=False, distance=float("nan"), threshold=0.45, user_id="x"
            )

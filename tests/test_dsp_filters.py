"""Butterworth design and filtering tests, cross-validated against scipy."""

import numpy as np
import pytest
from scipy import signal as scipy_signal

from repro.dsp.filters import (
    butterworth_prototype_poles,
    design_highpass,
    design_lowpass,
    frequency_response,
    highpass,
    normalized_sections,
    sosfilt,
)
from repro.errors import ConfigError, ShapeError

FS = 350.0


class TestPrototype:
    def test_poles_on_unit_circle(self):
        poles = butterworth_prototype_poles(4)
        np.testing.assert_allclose(np.abs(poles), 1.0)

    def test_poles_in_left_half_plane(self):
        poles = butterworth_prototype_poles(6)
        assert np.all(poles.real < 0.0)

    def test_poles_conjugate_symmetric(self):
        poles = butterworth_prototype_poles(4)
        for pole in poles:
            assert np.min(np.abs(poles - np.conj(pole))) < 1e-12

    def test_rejects_nonpositive_order(self):
        with pytest.raises(ConfigError):
            butterworth_prototype_poles(0)


class TestDesignVsScipy:
    @pytest.mark.parametrize("order", [2, 4, 6, 8])
    def test_highpass_magnitude_matches_scipy(self, order):
        sos = design_highpass(order, 20.0, FS)
        sos_ref = scipy_signal.butter(order, 20.0, "highpass", fs=FS, output="sos")
        freqs = np.linspace(1.0, FS / 2 - 1, 400)
        ours = np.abs(frequency_response(sos, freqs, FS))
        w = 2 * np.pi * freqs / FS
        _, ref = scipy_signal.sosfreqz(sos_ref, worN=w)
        np.testing.assert_allclose(ours, np.abs(ref), atol=1e-10)

    @pytest.mark.parametrize("order", [2, 4, 8])
    def test_lowpass_magnitude_matches_scipy(self, order):
        sos = design_lowpass(order, 50.0, FS)
        sos_ref = scipy_signal.butter(order, 50.0, "lowpass", fs=FS, output="sos")
        freqs = np.linspace(1.0, FS / 2 - 1, 400)
        ours = np.abs(frequency_response(sos, freqs, FS))
        w = 2 * np.pi * freqs / FS
        _, ref = scipy_signal.sosfreqz(sos_ref, worN=w)
        np.testing.assert_allclose(ours, np.abs(ref), atol=1e-10)

    def test_halfpower_at_cutoff(self):
        sos = design_highpass(4, 20.0, FS)
        mag = np.abs(frequency_response(sos, np.array([20.0]), FS))[0]
        assert mag == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-6)

    def test_rejects_odd_order(self):
        with pytest.raises(ConfigError):
            design_highpass(3, 20.0, FS)

    def test_rejects_cutoff_beyond_nyquist(self):
        with pytest.raises(ConfigError):
            design_highpass(4, 200.0, FS)


class TestSosfilt:
    def test_matches_scipy_filtering(self, rng):
        sos = design_highpass(4, 20.0, FS)
        x = rng.normal(size=300)
        ours = sosfilt(sos, x)
        ref = scipy_signal.sosfilt(sos, x)
        np.testing.assert_allclose(ours, ref, atol=1e-10)

    def test_batched_equals_loop(self, rng):
        sos = design_highpass(4, 20.0, FS)
        x = rng.normal(size=(6, 100))
        batched = sosfilt(sos, x)
        for axis in range(6):
            np.testing.assert_allclose(batched[axis], sosfilt(sos, x[axis]))

    def test_highpass_kills_dc(self):
        out = highpass(np.full(400, 123.0), 20.0, FS)
        assert np.abs(out[-50:]).max() < 1.0

    def test_highpass_preserves_inband_tone(self):
        t = np.arange(1400) / FS
        tone = np.sin(2 * np.pi * 100.0 * t)
        out = highpass(tone, 20.0, FS)
        # Steady-state amplitude preserved within 5 %.
        assert np.abs(out[700:]).max() == pytest.approx(1.0, rel=0.05)

    def test_highpass_attenuates_body_motion_band(self):
        t = np.arange(1400) / FS
        sway = np.sin(2 * np.pi * 3.0 * t)
        out = highpass(sway, 20.0, FS)
        assert np.abs(out[700:]).max() < 0.05

    def test_rejects_bad_sos_shape(self):
        with pytest.raises(ShapeError):
            sosfilt(np.zeros((2, 5)), np.zeros(10))

    def test_input_not_mutated(self, rng):
        sos = design_highpass(2, 20.0, FS)
        x = rng.normal(size=50)
        original = x.copy()
        sosfilt(sos, x)
        np.testing.assert_array_equal(x, original)


class TestZeroInitialConditionContract:
    """``sosfilt`` always starts from rest — the documented contract
    the streaming twin (and every padding caller) relies on."""

    def test_first_output_is_cascaded_b0_times_x0(self, rng):
        # With s1 = s2 = 0 the first output of each section is b0 * x0,
        # so the cascade's first output is (prod b0) * x0 exactly.
        sos = design_highpass(4, 20.0, FS)
        x = rng.normal(size=30)
        sections = normalized_sections(sos)
        expected = x[0]
        for b0, _, _, _, _ in sections:
            expected = b0 * expected
        assert sosfilt(sos, x)[0] == expected

    def test_repeated_calls_are_independent(self, rng):
        # No state leaks between calls: same input, same output.
        sos = design_highpass(4, 20.0, FS)
        x = rng.normal(size=100)
        first = sosfilt(sos, x)
        sosfilt(sos, rng.normal(size=64))  # unrelated traffic
        np.testing.assert_array_equal(sosfilt(sos, x), first)

    def test_split_filtering_differs_without_carried_state(self, rng):
        # Filtering two halves independently is NOT the same as one
        # call — each half restarts from rest.  This is exactly why the
        # streaming twin must carry (s1, s2) across chunks.
        sos = design_highpass(4, 20.0, FS)
        x = rng.normal(size=120)
        whole = sosfilt(sos, x)
        split = np.concatenate([sosfilt(sos, x[:60]), sosfilt(sos, x[60:])])
        assert not np.array_equal(whole, split)

    def test_settling_pad_suppresses_startup_transient(self):
        # The detection path's first-sample padding: a constant input
        # long enough for the high-pass to settle leaves outputs near
        # zero, so real samples see no spurious startup energy.
        sos = design_highpass(4, 20.0, FS)
        pad = max(int(round(4.0 * FS / 20.0)), 8)
        constant = np.full(pad + 50, 123.4)
        out = sosfilt(sos, constant)
        assert abs(out[0]) > 1.0  # raw startup transient is large
        # Settled after the pad: residual ripple is orders of magnitude
        # below the detector's 100-count sustain threshold.
        assert np.all(np.abs(out[pad:]) < 0.01)

    def test_normalized_sections_divide_by_a0_once(self):
        sos = design_highpass(4, 20.0, FS)
        scaled = sos * 3.0  # a0 = 3 everywhere; same transfer function
        plain = normalized_sections(sos)
        rescaled = normalized_sections(scaled)
        for (b0, b1, b2, a1, a2), (c0, c1, c2, d1, d2) in zip(plain, rescaled):
            np.testing.assert_allclose(
                [c0, c1, c2, d1, d2], [b0, b1, b2, a1, a2], rtol=1e-12
            )

    def test_normalized_sections_passthrough_when_a0_is_one(self):
        # a0 == 1 (the design_* output) must not be touched at all —
        # even a divide-by-1.0 could flip the last ulp.
        sos = design_highpass(4, 20.0, FS)
        for row, (b0, b1, b2, a1, a2) in zip(sos, normalized_sections(sos)):
            assert (b0, b1, b2) == (row[0], row[1], row[2])
            assert (a1, a2) == (row[4], row[5])

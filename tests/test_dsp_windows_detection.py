"""Window framing and onset detection tests (Section IV)."""

import numpy as np
import pytest

from repro.config import PreprocessConfig
from repro.dsp.detection import (
    detect_onset,
    has_vibration,
    onset_metric,
    segment_after_onset,
)
from repro.dsp.windows import frame, window_start_indices, window_std
from repro.errors import (
    ConfigError,
    OnsetNotFoundError,
    SegmentTooShortError,
    ShapeError,
)


class TestFraming:
    def test_non_overlapping_frames(self):
        frames = frame(np.arange(25), 10)
        assert frames.shape == (2, 10)
        np.testing.assert_array_equal(frames[0], np.arange(10))
        np.testing.assert_array_equal(frames[1], np.arange(10, 20))

    def test_custom_stride(self):
        frames = frame(np.arange(20), 10, stride=5)
        assert frames.shape == (3, 10)

    def test_short_signal_yields_empty(self):
        assert frame(np.arange(5), 10).shape == (0, 10)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            frame(np.zeros((5, 5)), 2)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigError):
            frame(np.arange(10), 0)

    def test_window_std_values(self):
        signal = np.concatenate([np.zeros(10), np.full(10, 7.0)])
        stds = window_std(signal, 10)
        np.testing.assert_allclose(stds, [0.0, 0.0])

    def test_window_start_indices(self):
        np.testing.assert_array_equal(
            window_start_indices(35, 10), [0, 10, 20]
        )


def _synthetic_recording(onset_sample: int = 80, amplitude: float = 2000.0):
    """Silence, then a strong oscillation on all accel axes."""
    rng = np.random.default_rng(0)
    rec = rng.normal(0.0, 3.0, size=(210, 6))
    t = np.arange(210 - onset_sample)
    burst = amplitude * np.sin(2 * np.pi * 0.25 * t)
    for axis in range(3):
        rec[onset_sample:, axis] += burst
    return rec


class TestOnsetDetection:
    def test_finds_onset_near_truth(self):
        rec = _synthetic_recording(onset_sample=80)
        onset = detect_onset(rec)
        assert 65 <= onset <= 90

    def test_silence_raises(self):
        rng = np.random.default_rng(0)
        rec = rng.normal(0.0, 3.0, size=(210, 6))
        with pytest.raises(OnsetNotFoundError):
            detect_onset(rec)

    def test_has_vibration_is_boolean_wrapper(self):
        assert has_vibration(_synthetic_recording())
        assert not has_vibration(np.zeros((210, 6)))

    def test_short_recording_raises(self):
        with pytest.raises(OnsetNotFoundError):
            detect_onset(np.zeros((5, 6)))

    def test_brief_glitch_does_not_trigger(self):
        """An isolated sensor spike without sustained follow-up is ignored.

        (The spike's high-pass ring-down decays within a window or two,
        so the sustain rule rejects it.)
        """
        rng = np.random.default_rng(0)
        rec = rng.normal(0.0, 3.0, size=(210, 6))
        rec[55, 2] += 5000.0  # one glitch sample, then silence again
        with pytest.raises(OnsetNotFoundError):
            detect_onset(rec)

    def test_uses_any_accel_axis(self):
        """Vibration only on ay still triggers (coupling-direction robust)."""
        rng = np.random.default_rng(0)
        rec = rng.normal(0.0, 3.0, size=(210, 6))
        t = np.arange(130)
        rec[80:, 1] += 2000.0 * np.sin(2 * np.pi * 0.25 * t)
        assert 65 <= detect_onset(rec) <= 90

    def test_detection_on_real_synthesis(self, recording):
        onset = detect_onset(recording)
        assert 20 <= onset <= 100

    def test_effort_invariant_alignment(self):
        """A 2x louder copy detects (nearly) the same onset."""
        rec = _synthetic_recording(onset_sample=83)
        loud = rec.copy()
        loud[:, :3] *= 2.0
        assert abs(detect_onset(rec) - detect_onset(loud)) <= 1

    def test_onset_metric_shape(self):
        metric = onset_metric(np.zeros((50, 6)), window=10)
        assert metric.shape == (5,)


class TestSegmentation:
    def test_segment_shape_and_content(self):
        rec = np.arange(210 * 6, dtype=float).reshape(210, 6)
        seg = segment_after_onset(rec, 10, 60)
        assert seg.shape == (6, 60)
        np.testing.assert_array_equal(seg[0], rec[10:70, 0])

    def test_too_short_raises(self):
        with pytest.raises(SegmentTooShortError):
            segment_after_onset(np.zeros((100, 6)), 60, 60)

    def test_negative_onset_raises(self):
        with pytest.raises(ShapeError):
            segment_after_onset(np.zeros((100, 6)), -1, 60)

    def test_returns_copy(self):
        rec = np.zeros((100, 6))
        seg = segment_after_onset(rec, 0, 60)
        seg[0, 0] = 99.0
        assert rec[0, 0] == 0.0

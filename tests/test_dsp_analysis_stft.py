"""Tests for signal analysis (F0, resampling) and STFT helpers."""

import numpy as np
import pytest

from repro.dsp.analysis import (
    autocorrelation,
    envelope,
    estimate_f0,
    resample_fft,
    zero_crossing_rate,
)
from repro.dsp.filters import design_bandpass, design_bandstop, frequency_response
from repro.dsp.stft import spectrogram, stft, window_function
from repro.errors import ConfigError, ShapeError

FS = 2800.0


class TestAutocorrelation:
    def test_zero_lag_is_variance(self, rng):
        x = rng.normal(0.0, 2.0, 4096)
        acf = autocorrelation(x, max_lag=10)
        assert acf[0] == pytest.approx(np.var(x), rel=0.01)

    def test_periodic_signal_peaks_at_period(self):
        t = np.arange(2800) / FS
        x = np.sin(2 * np.pi * 100.0 * t)
        acf = autocorrelation(x, max_lag=100)
        period = FS / 100.0
        peak = int(np.argmax(acf[10:])) + 10
        assert peak == pytest.approx(period, abs=1.0)

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            autocorrelation(np.array([]))


class TestF0Estimation:
    @pytest.mark.parametrize("f0", [80.0, 120.0, 180.0, 240.0])
    def test_pure_tone(self, f0):
        t = np.arange(int(FS * 0.5)) / FS
        x = np.sin(2 * np.pi * f0 * t)
        estimate = estimate_f0(x, FS)
        assert estimate == pytest.approx(f0, rel=0.02)

    def test_harmonic_rich_signal(self):
        t = np.arange(int(FS * 0.5)) / FS
        x = sum(np.sin(2 * np.pi * 110.0 * k * t) / k for k in (1, 2, 3))
        assert estimate_f0(x, FS) == pytest.approx(110.0, rel=0.03)

    def test_noise_returns_none(self, rng):
        assert estimate_f0(rng.normal(size=2800), FS) is None

    def test_estimates_voice_source_f0(self, population, rng):
        """The estimator recovers the synthetic person's F0."""
        from repro.physio.voice import VoiceSource

        person = population[1]
        wave = VoiceSource(person, jitter=0.0, shimmer=0.0).synthesize(
            0.5, FS, rng, onset_s=0.0
        )
        estimate = estimate_f0(wave, FS)
        assert estimate == pytest.approx(person.f0_hz, rel=0.05)

    def test_rejects_bad_range(self):
        with pytest.raises(ConfigError):
            estimate_f0(np.zeros(100), FS, f0_min_hz=200.0, f0_max_hz=100.0)


class TestResampleFFT:
    def test_identity(self, rng):
        x = rng.normal(size=64)
        np.testing.assert_allclose(resample_fft(x, 64), x)

    def test_tone_survives_upsampling(self):
        t = np.arange(128) / 128.0
        x = np.sin(2 * np.pi * 5 * t)
        up = resample_fft(x, 256)
        t2 = np.arange(256) / 256.0
        np.testing.assert_allclose(up, np.sin(2 * np.pi * 5 * t2), atol=1e-8)

    def test_energy_scaling(self, rng):
        x = np.sin(2 * np.pi * 3 * np.arange(100) / 100.0)
        up = resample_fft(x, 400)
        assert np.abs(up).max() == pytest.approx(np.abs(x).max(), rel=0.02)

    def test_rejects_bad_target(self):
        with pytest.raises(ConfigError):
            resample_fft(np.zeros(8), 0)


class TestEnvelopeZCR:
    def test_envelope_tracks_amplitude(self):
        t = np.arange(700)
        x = np.where(t < 350, 1.0, 5.0) * np.sin(0.5 * t)
        env = envelope(x, window=50)
        assert env[:250].mean() < env[-250:].mean() / 2

    def test_zcr_of_alternating_signal(self):
        assert zero_crossing_rate(np.array([1.0, -1.0, 1.0, -1.0])) == 1.0

    def test_zcr_of_constant(self):
        assert zero_crossing_rate(np.ones(10)) == 0.0


class TestSTFT:
    def test_shapes(self, rng):
        out = stft(rng.normal(size=256), frame_length=64, hop=16)
        assert out.shape == (13, 33)

    def test_spectrogram_peak_at_tone(self):
        t = np.arange(2048) / FS
        x = np.sin(2 * np.pi * 200.0 * t)
        times, freqs, power = spectrogram(x, FS, frame_length=256, hop=64)
        peak_bins = power.argmax(axis=1)
        np.testing.assert_allclose(freqs[peak_bins], 200.0, atol=12.0)

    def test_windows_normalised_shapes(self):
        for name in ("hann", "hamming", "blackman", "rectangular"):
            win = window_function(name, 32)
            assert win.shape == (32,)
            assert win.max() <= 1.0 + 1e-12

    def test_unknown_window_raises(self):
        with pytest.raises(ConfigError):
            window_function("kaiser", 32)

    def test_short_signal_raises(self):
        with pytest.raises(ShapeError):
            stft(np.zeros(10), frame_length=64)


class TestBandFilters:
    def test_bandpass_passes_center_blocks_edges(self):
        sos = design_bandpass(4, 50.0, 120.0, 350.0)
        freqs = np.array([10.0, 80.0, 170.0])
        mags = np.abs(frequency_response(sos, freqs, 350.0))
        assert mags[1] > 0.9
        assert mags[0] < 0.1 and mags[2] < 0.2

    def test_bandstop_cuts_center(self):
        sos = design_bandstop(4, 60.0, 100.0, 350.0)
        center = float(np.sqrt(60.0 * 100.0))
        mags = np.abs(frequency_response(sos, np.array([10.0, center, 170.0]), 350.0))
        assert mags[1] < 0.15
        assert mags[0] > 0.8 and mags[2] > 0.8

    def test_bandpass_rejects_bad_edges(self):
        with pytest.raises(ConfigError):
            design_bandpass(4, 120.0, 50.0, 350.0)

"""Embedding protocol tests."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.errors import ShapeError
from repro.eval.protocol import run_embedding_protocol, run_leave_one_out_protocol
from repro.security.cancelable import CancelableTransform


class TestEmbeddingProtocol:
    def test_result_fields(self, hired_dataset, user_dataset, trained_model):
        result = run_embedding_protocol(
            hired_dataset, user_dataset, model=trained_model
        )
        assert result.embeddings.shape[0] == len(user_dataset)
        assert result.genuine.size > 0 and result.impostor.size > 0
        assert 0.0 <= result.eer.eer <= 0.5
        assert result.mean_genuine_distance < result.mean_impostor_distance

    def test_reusing_model_skips_training(self, hired_dataset, user_dataset, trained_model):
        a = run_embedding_protocol(hired_dataset, user_dataset, model=trained_model)
        b = run_embedding_protocol(hired_dataset, user_dataset, model=trained_model)
        np.testing.assert_array_equal(a.embeddings, b.embeddings)

    def test_transform_preserves_eer_roughly(
        self, hired_dataset, user_dataset, trained_model
    ):
        """Projecting everyone with one Gaussian matrix (genuine use of
        Section VI) must not break verification."""
        plain = run_embedding_protocol(hired_dataset, user_dataset, model=trained_model)
        transform = CancelableTransform(
            trained_model.config.embedding_dim, seed=0
        )
        projected = run_embedding_protocol(
            hired_dataset, user_dataset, model=trained_model, transform=transform
        )
        assert projected.eer.eer == pytest.approx(plain.eer.eer, abs=0.05)

    def test_empty_eval_raises(self, hired_dataset, user_dataset, trained_model):
        import dataclasses

        empty = dataclasses.replace(
            user_dataset,
            signal_arrays=user_dataset.signal_arrays[:0],
            features=user_dataset.features[:0],
            labels=user_dataset.labels[:0],
            trial_ids=user_dataset.trial_ids[:0],
        )
        with pytest.raises(ShapeError):
            run_embedding_protocol(hired_dataset, empty, model=trained_model)


class TestLeaveOneOutProtocol:
    def test_restricted_people(self, user_dataset, small_extractor_config):
        result = run_leave_one_out_protocol(
            user_dataset,
            extractor_config=small_extractor_config,
            training_config=TrainingConfig(epochs=2, batch_size=64),
            people=[0, 1],
        )
        assert set(result.labels.tolist()) == {0, 1}
        assert result.embeddings.shape[0] == int(
            np.sum(np.isin(user_dataset.labels, [0, 1]))
        )

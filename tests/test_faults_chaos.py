"""Fault injection, resilience policies and the chaos invariants.

Three layers of coverage:

* **units** — :class:`FaultPlan` determinism and budgets, payload
  corruption shapes, the circuit breaker state machine (fake clock,
  no sleeping) and the stage-timeout helper;
* **policies** — engine retry-to-baseline-parity, degraded-axes
  verification, the identify gallery-build fallback, and the server's
  kill/respawn, breaker and timeout handling;
* **chaos schedules** — randomized seeded fault plans driven through a
  live :class:`AuthServer`, asserting the four invariants of
  :mod:`repro.faults.chaos`: no deadlock, no wrong accept,
  exactly-once accounting, bitwise recovery after the plan ends.

Thread-blocking tests run under the same hand-rolled watchdog as
``test_serve.py`` (no pytest-timeout here).
"""

from __future__ import annotations

import functools
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.config import GalleryConfig, ResilienceConfig, ServingConfig
from repro.core.engine import BatchOutcome, InferenceEngine
from repro.core.verification import REJECTED_DISTANCE
from repro.errors import (
    AdmissionRejectedError,
    CircuitOpenError,
    ConfigError,
    InjectedFaultError,
    ShapeError,
    StageTimeoutError,
    TransientError,
    WorkerKilledError,
)
from repro.faults import (
    FaultPlan,
    FaultRule,
    clear,
    corrupt_recording,
    get_plan,
    install,
    maybe_delay,
    maybe_fail,
    should_reject,
)
from repro.faults.chaos import RULE_TEMPLATES, random_plan, run_schedule
from repro.serve import AuthServer, RequestStatus
from repro.serve.resilience import CircuitBreaker, call_with_timeout

WATCHDOG_S = 60.0


def watchdog(seconds: float = WATCHDOG_S):
    """Run the test body in a daemon thread; a hang fails, not wedges."""

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            outcome: dict = {}

            def body() -> None:
                try:
                    func(*args, **kwargs)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    outcome["error"] = exc

            thread = threading.Thread(target=body, daemon=True)
            thread.start()
            thread.join(seconds)
            if thread.is_alive():
                pytest.fail(
                    f"{func.__name__} exceeded the {seconds:.0f}s watchdog "
                    "(probable deadlock or missed wakeup)"
                )
            if "error" in outcome:
                raise outcome["error"]

        return wrapper

    return decorate


@pytest.fixture(autouse=True)
def _no_plan_leaks():
    """No test may leave a fault plan installed process-wide."""
    clear()
    yield
    clear()


@pytest.fixture(scope="module")
def bench():
    """(system, user_id, probes): untrained but real serving substrate.

    Two-slot gallery shards so the chaos schedules' churn mutations
    actually cross the compaction threshold mid-window.
    """
    from repro.serve.loadgen import build_bench_system

    return build_bench_system(
        dtype="float32",
        num_probes=8,
        gallery=GalleryConfig(shard_size=2, compact_tombstone_ratio=0.4),
    )


# -- FaultRule / FaultPlan units ------------------------------------------


class TestFaultRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultRule("imu", "meltdown")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probability": 1.5},
            {"probability": -0.1},
            {"max_fires": -1},
            {"delay_s": -0.5},
            {"fraction": 0.0},
            {"fraction": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultRule("imu", "nan", **kwargs)


class TestFaultPlan:
    def _fire_sequence(self, plan: FaultPlan, draws: int = 64) -> list[bool]:
        return [
            plan.fired("engine.extractor", ("error",)) is not None
            for _ in range(draws)
        ]

    def test_same_seed_same_decisions(self):
        rule = FaultRule("engine.extractor", "error", probability=0.5)
        first = self._fire_sequence(FaultPlan([rule], seed=7))
        second = self._fire_sequence(FaultPlan([rule], seed=7))
        assert first == second
        assert any(first) and not all(first)  # a real coin, not a constant

    def test_different_seeds_differ(self):
        rule = FaultRule("engine.extractor", "error", probability=0.5)
        first = self._fire_sequence(FaultPlan([rule], seed=1), draws=128)
        second = self._fire_sequence(FaultPlan([rule], seed=2), draws=128)
        assert first != second

    def test_reset_rewinds_streams_and_budgets(self):
        rule = FaultRule(
            "engine.extractor", "error", probability=0.5, max_fires=10
        )
        plan = FaultPlan([rule], seed=3)
        first = self._fire_sequence(plan)
        assert plan.total_fires() == sum(first)
        plan.reset()
        assert plan.total_fires() == 0
        assert self._fire_sequence(plan) == first

    def test_max_fires_budget(self):
        rule = FaultRule("serve.worker", "kill", max_fires=2)
        plan = FaultPlan([rule], seed=0)
        fired = [
            plan.fired("serve.worker", ("kill",)) is not None for _ in range(6)
        ]
        assert fired == [True, True, False, False, False, False]
        assert plan.stats() == {"serve.worker/kill": 2}

    def test_zero_probability_never_fires(self):
        plan = FaultPlan(
            [FaultRule("imu", "nan", probability=0.0)], seed=0
        )
        assert plan.corruption_draws("imu", 6) == []
        assert plan.total_fires() == 0

    def test_point_and_kind_filtering(self):
        plan = FaultPlan([FaultRule("engine.frontend", "error")], seed=0)
        assert plan.fired("engine.extractor", ("error",)) is None
        assert plan.fired("engine.frontend", ("delay",)) is None
        assert plan.fired("engine.frontend", ("error",)) is not None

    def test_active_installs_and_restores(self):
        outer = FaultPlan([], seed=0)
        inner = FaultPlan([], seed=1)
        assert get_plan() is None
        with outer.active():
            assert get_plan() is outer
            with inner.active():
                assert get_plan() is inner
            assert get_plan() is outer
        assert get_plan() is None

    def test_active_restores_on_exception(self):
        plan = FaultPlan([], seed=0)
        with pytest.raises(RuntimeError):
            with plan.active():
                raise RuntimeError("boom")
        assert get_plan() is None


# -- inertness -------------------------------------------------------------


class TestInertDefault:
    def test_hooks_are_noops_without_plan(self):
        assert get_plan() is None
        maybe_fail("serve.worker")  # must not raise
        maybe_delay("serve.worker")
        assert should_reject("serve.queue") is False

    def test_corrupt_returns_input_object_without_plan(self):
        recording = np.zeros((210, 6))
        assert corrupt_recording(recording) is recording

    def test_empty_plan_preserves_bitwise_parity(self, bench):
        system, user_id, probes = bench
        baseline = system.verify_many(user_id, probes[:4])
        with FaultPlan([], seed=0).active():
            under_plan = system.verify_many(user_id, probes[:4])
        assert [r.distance for r in baseline] == [
            r.distance for r in under_plan
        ]
        assert all(not r.degraded for r in under_plan)


# -- payload corruption ----------------------------------------------------


class TestCorruption:
    def test_dropout_zeroes_whole_axes_and_copies(self):
        recording = np.ones((210, 6))
        plan = FaultPlan([FaultRule("imu", "dropout", axes=(2, 4))], seed=0)
        with plan.active():
            out = corrupt_recording(recording)
        assert out is not recording
        assert recording.all()  # caller's array untouched
        assert (out[:, 2] == 0).all() and (out[:, 4] == 0).all()
        assert (out[:, [0, 1, 3, 5]] == 1).all()

    def test_nan_burst_is_contiguous_with_expected_span(self):
        recording = np.ones((200, 6))
        rule = FaultRule("imu", "nan", axes=(1,), fraction=0.25)
        with FaultPlan([rule], seed=5).active():
            out = corrupt_recording(recording)
        bad = np.flatnonzero(~np.isfinite(out[:, 1]))
        assert len(bad) == 50  # round(0.25 * 200)
        assert (np.diff(bad) == 1).all()  # one contiguous window
        assert np.isfinite(out[:, [0, 2, 3, 4, 5]]).all()

    def test_clip_saturates_at_magnitude(self):
        rng = np.random.default_rng(0)
        recording = rng.normal(scale=100.0, size=(210, 6))
        rule = FaultRule("imu", "clip", axes=(0,), magnitude=25.0)
        with FaultPlan([rule], seed=0).active():
            out = corrupt_recording(recording)
        assert np.abs(out[:, 0]).max() <= 25.0
        assert np.array_equal(out[:, 1:], recording[:, 1:])

    def test_corruption_is_seed_deterministic(self):
        recording = np.ones((210, 6))
        rule = FaultRule("imu", "nan", fraction=0.2)  # axes drawn from stream
        outs = []
        for _ in range(2):
            with FaultPlan([rule], seed=11).active():
                outs.append(corrupt_recording(recording))
        assert np.array_equal(np.isnan(outs[0]), np.isnan(outs[1]))


# -- circuit breaker and stage timeout ------------------------------------


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(3, cooldown_s=1.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(2, cooldown_s=1.0, clock=_FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.allow()  # 1 consecutive, threshold 2

    def test_half_open_probe_success_closes(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 1.5  # cooldown elapsed
        assert breaker.allow()       # the single half-open probe
        assert not breaker.allow()   # everyone else still shed
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        clock.now = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.now = 3.0  # a fresh cooldown was armed at t=1.5
        assert breaker.allow()

    def test_zero_threshold_disables(self):
        breaker = CircuitBreaker(0, cooldown_s=1.0, clock=_FakeClock())
        assert not breaker.enabled
        for _ in range(10):
            breaker.record_failure()
            assert breaker.allow()


class TestCallWithTimeout:
    @watchdog()
    def test_returns_value(self):
        assert call_with_timeout(lambda: 41 + 1, timeout_s=5.0) == 42

    @watchdog()
    def test_raises_stage_timeout_on_stall(self):
        with pytest.raises(StageTimeoutError):
            call_with_timeout(lambda: time.sleep(2.0), timeout_s=0.05)

    @watchdog()
    def test_propagates_exceptions(self):
        def boom():
            raise ValueError("inner")

        with pytest.raises(ValueError, match="inner"):
            call_with_timeout(boom, timeout_s=5.0)


# -- engine retry and degraded axes ---------------------------------------


class TestEngineRetry:
    def test_transient_fault_retried_to_bitwise_parity(self, bench):
        system, user_id, probes = bench
        baseline = system.verify_many(user_id, probes[:3])
        rule = FaultRule("engine.extractor", "error", max_fires=1)
        with obs.collecting() as registry:
            with FaultPlan([rule], seed=0).active():
                retried = system.verify_many(user_id, probes[:3])
        assert [r.distance for r in retried] == [r.distance for r in baseline]
        assert (
            registry.counter("fault_retries_total", stage="extractor").value
            == 1
        )
        assert (
            registry.counter(
                "fault_injected_total",
                point="engine.extractor",
                kind="error",
            ).value
            == 1
        )

    def test_exhausted_retries_raise_transient_error(self, bench):
        system, _, probes = bench
        rule = FaultRule("engine.preprocess", "error")  # fires every attempt
        with FaultPlan([rule], seed=0).active():
            with pytest.raises(InjectedFaultError) as excinfo:
                system.engine.embed(probes[:2])
        assert isinstance(excinfo.value, TransientError)
        assert excinfo.value.point == "engine.preprocess"

    def test_injected_delay_sleeps_but_preserves_results(self, bench):
        system, user_id, probes = bench
        baseline = system.verify_many(user_id, probes[:1])
        rule = FaultRule("engine.frontend", "delay", delay_s=0.05, max_fires=1)
        with FaultPlan([rule], seed=0).active():
            start = time.perf_counter()
            delayed = system.verify_many(user_id, probes[:1])
            elapsed = time.perf_counter() - start
        assert elapsed >= 0.05
        assert delayed[0].distance == baseline[0].distance


class TestDegradedAxes:
    def test_one_dead_axis_verifies_degraded(self, bench):
        system, user_id, probes = bench
        probe = np.array(probes[0], copy=True)
        probe[:, 4] = 0.0  # dead gyro channel
        with obs.collecting() as registry:
            result = system.verify_many(user_id, [probe])[0]
        assert result.degraded
        assert result.distance != REJECTED_DISTANCE
        assert registry.counter("degraded_total", path="axes").value == 1

    def test_nan_burst_axis_verifies_degraded(self, bench):
        system, user_id, probes = bench
        probe = np.array(probes[1], copy=True)
        probe[80:120, 5] = np.nan
        result = system.verify_many(user_id, [probe])[0]
        assert result.degraded
        assert np.isfinite(result.distance)

    def test_below_min_usable_axes_is_refused(self, bench):
        system, user_id, probes = bench
        probe = np.array(probes[0], copy=True)
        probe[:, 3:] = 0.0  # three dead axes -> 3 usable < 4
        result = system.verify_many(user_id, [probe])[0]
        assert not result.accepted
        assert result.distance == REJECTED_DISTANCE
        assert not result.degraded  # refused, not served degraded
        outcome = system.engine.embed([probe])
        assert outcome.failures[0].error == "InsufficientAxesError"

    def test_clean_probe_is_not_degraded(self, bench):
        system, user_id, probes = bench
        result = system.verify_many(user_id, [probes[2]])[0]
        assert not result.degraded

    def test_min_usable_axes_policy_is_honored(self, bench):
        system, _, probes = bench
        strict = InferenceEngine(
            system.model,
            system.preprocessor,
            system.frontend,
            resilience=ResilienceConfig(min_usable_axes=6),
        )
        probe = np.array(probes[0], copy=True)
        probe[:, 1] = 0.0
        outcome = strict.embed([probe])
        assert outcome.num_ok == 0
        assert outcome.failures[0].error == "InsufficientAxesError"

    def test_batch_outcome_validates_degraded_subset(self):
        with pytest.raises(ShapeError):
            BatchOutcome(
                values=np.zeros((1, 2)),
                indices=np.array([0]),
                failures=(),
                batch_size=1,
                degraded=(1,),  # not a success index
            )


class TestGalleryFallback:
    def test_identify_falls_back_per_user_when_build_fails(self, bench):
        system, user_id, probes = bench
        system._gallery = None  # force a (faulted) rebuild
        rule = FaultRule("gallery.build", "error")  # every build attempt
        with obs.collecting() as registry:
            with FaultPlan([rule], seed=0).active():
                degraded_results = system.identify_many(probes[:2])
        assert all(r is not None for r in degraded_results)
        assert all(r.degraded for r in degraded_results)
        assert all(r.user_id == user_id for r in degraded_results)
        assert (
            registry.counter("degraded_total", path="identify_fallback").value
            == 2
        )
        # Plan gone: the rebuild succeeds and answers match the fallback.
        normal = system.identify_many(probes[:2])
        assert all(not r.degraded for r in normal)
        for fallback, direct in zip(degraded_results, normal):
            assert fallback.user_id == direct.user_id
            assert np.isclose(fallback.distance, direct.distance)


@pytest.fixture(scope="module")
def gallery_bench():
    """A dedicated small-shard system for the shard-fault tests, so their
    enrollments never perturb the shared ``bench`` substrate."""
    from repro.serve.loadgen import build_bench_system

    return build_bench_system(
        dtype="float32",
        num_probes=6,
        gallery=GalleryConfig(shard_size=2, compact_tombstone_ratio=0.4),
    )


class TestGalleryShardFaults:
    def test_shard_build_fault_degrades_then_retries(self, gallery_bench):
        """A faulted shard mutation falls back this identify, applies next.

        The mutation-log contract: the entry is popped only after a
        successful apply, so an injected ``gallery.shard_build`` error
        leaves it queued (exactly-once application, at-least-once
        attempts) and the very next sync lands it.
        """
        system, user_id, probes = gallery_bench
        system.reset_gallery()
        clean = system.identify_many(probes[:1])
        assert not clean[0].degraded
        system.enroll("gfault-a", list(probes[:3]), transform_seed=501)
        assert system._gallery.pending == 1
        rule = FaultRule("gallery.shard_build", "error", max_fires=1)
        with FaultPlan([rule], seed=0).active():
            degraded = system.identify_many(probes[:1])
            assert degraded[0] is not None and degraded[0].degraded
            assert system._gallery.pending == 1  # still queued for retry
            retried = system.identify_many(probes[:1])
            assert not retried[0].degraded
            assert system._gallery.pending == 0
        assert "gfault-a" in system._gallery.users()

    def test_compaction_fault_is_contained_and_retried(self, gallery_bench):
        """A faulted compaction never fails identify — it defers.

        Tombstones are correct, merely unreclaimed: the identification
        is served full-quality under the active plan, the failure is
        counted, and the next sync compacts the shard for real.
        """
        system, user_id, probes = gallery_bench
        system.enroll("gfault-c1", list(probes[:3]), transform_seed=502)
        system.enroll("gfault-c2", list(probes[:3]), transform_seed=503)
        system.reset_gallery()
        system.identify_many(probes[:1])  # clean build
        gallery = system._gallery
        system.revoke("gfault-c2")
        # identify syncs twice (once explicitly, once inside best_match);
        # a two-fire budget keeps the compaction deferred through both.
        rule = FaultRule("gallery.compact", "error", max_fires=2)
        with obs.collecting() as registry:
            with FaultPlan([rule], seed=0).active():
                results = system.identify_many(probes[:1])
        assert results[0] is not None and not results[0].degraded
        assert (
            registry.counter("gallery_compaction_failures_total").value == 2
        )
        assert any(shard.tombstones for shard in gallery._shards)
        assert "gfault-c2" not in gallery.users()
        system.identify_many(probes[:1])  # plan gone: deferred compaction runs
        assert gallery.compactions >= 1
        assert all(shard.tombstones == 0 for shard in gallery._shards)


# -- server-side resilience ------------------------------------------------


def _quiet_serving() -> ServingConfig:
    return ServingConfig(num_workers=1, max_batch_size=4, max_wait_ms=2.0)


class TestServerResilience:
    @watchdog()
    def test_worker_kill_fails_batch_and_respawns(self, bench):
        system, user_id, probes = bench
        rule = FaultRule("serve.worker", "kill", max_fires=1)
        with obs.collecting() as registry:
            with FaultPlan([rule], seed=0).active():
                with AuthServer(system, config=_quiet_serving()) as server:
                    killed = server.verify(user_id, probes[0])
                    killed.wait(WATCHDOG_S)
                    assert killed.status is RequestStatus.FAILED
                    with pytest.raises(WorkerKilledError):
                        killed.result(0)
                    # The replacement worker keeps serving.
                    revived = server.verify(user_id, probes[1])
                    revived.wait(WATCHDOG_S)
                    assert revived.status is RequestStatus.OK
        assert registry.counter("serve_worker_deaths_total").value == 1
        assert registry.counter("serve_worker_restarts_total").value == 1

    @watchdog()
    def test_breaker_sheds_as_refused_after_failures(self, bench):
        system, user_id, probes = bench
        resilience = ResilienceConfig(
            max_retries=0,
            breaker_failure_threshold=1,
            breaker_cooldown_s=60.0,
        )
        rule = FaultRule("serve.worker", "error", max_fires=1)
        with FaultPlan([rule], seed=0).active():
            with AuthServer(
                system, config=_quiet_serving(), resilience=resilience
            ) as server:
                failed = server.verify(user_id, probes[0])
                failed.wait(WATCHDOG_S)
                assert failed.status is RequestStatus.FAILED
                refused = server.verify(user_id, probes[1])
                refused.wait(WATCHDOG_S)
                assert refused.status is RequestStatus.REFUSED
                with pytest.raises(CircuitOpenError):
                    refused.result(0)

    @watchdog()
    def test_server_retries_transient_batch_failures(self, bench):
        system, user_id, probes = bench
        # Engine retries are exhausted by three consecutive fires; the
        # server's own retry then replays the whole batch, which draws
        # fresh (non-firing) decisions and succeeds.
        rule = FaultRule("engine.extractor", "error", max_fires=3)
        with obs.collecting() as registry:
            with FaultPlan([rule], seed=0).active():
                with AuthServer(system, config=_quiet_serving()) as server:
                    future = server.verify(user_id, probes[0])
                    future.wait(WATCHDOG_S)
                    assert future.status is RequestStatus.OK
        assert registry.counter("serve_retries_total").value >= 1

    @watchdog()
    def test_stage_timeout_refuses_stalled_batches(self, bench):
        system, user_id, probes = bench
        resilience = ResilienceConfig(max_retries=0, stage_timeout_s=0.05)
        rule = FaultRule("serve.worker", "delay", delay_s=1.0, max_fires=1)
        with FaultPlan([rule], seed=0).active():
            with AuthServer(
                system, config=_quiet_serving(), resilience=resilience
            ) as server:
                stalled = server.verify(user_id, probes[0])
                stalled.wait(WATCHDOG_S)
                assert stalled.status is RequestStatus.REFUSED
                with pytest.raises(StageTimeoutError):
                    stalled.result(0)

    @watchdog()
    def test_injected_queue_saturation_rejects_admission(self, bench):
        system, user_id, probes = bench
        rule = FaultRule("serve.queue", "reject", max_fires=1)
        with FaultPlan([rule], seed=0).active():
            with AuthServer(system, config=_quiet_serving()) as server:
                rejected = server.verify(user_id, probes[0])
                assert rejected.status is RequestStatus.REJECTED
                with pytest.raises(AdmissionRejectedError):
                    rejected.result(0)
                served = server.verify(user_id, probes[1])
                served.wait(WATCHDOG_S)
                assert served.status is RequestStatus.OK

    @watchdog()
    def test_future_settles_exactly_once(self, bench):
        """A future cannot be answered twice even if settlement races."""
        from repro.serve.server import AuthFuture, RequestKind

        future = AuthFuture(RequestKind.VERIFY, "u")
        assert future._resolve("first")
        assert not future._fail(RuntimeError("late"), RequestStatus.FAILED)
        assert not future._resolve("second")
        assert future.status is RequestStatus.OK
        assert future.result(0) == "first"


# -- randomized chaos schedules -------------------------------------------


class TestChaosSchedules:
    def test_random_plan_is_seed_deterministic(self):
        assert random_plan(42).rules == random_plan(42).rules
        structures = {random_plan(seed).rules for seed in range(12)}
        assert len(structures) > 1  # seeds actually vary the plan

    def test_rule_templates_cover_every_fault_point(self):
        points = {rule.point for rule in RULE_TEMPLATES}
        assert points == {
            "imu",
            "engine.preprocess",
            "engine.frontend",
            "engine.extractor",
            "gallery.build",
            "gallery.shard_build",
            "gallery.compact",
            "serve.queue",
            "serve.worker",
            "stream.push",
            "cascade.stage1",
        }

    @pytest.mark.parametrize("seed", range(12))
    @watchdog(120.0)
    def test_schedule_invariants(self, bench, seed):
        system, user_id, probes = bench
        report = run_schedule(
            system, user_id, probes, random_plan(seed), num_requests=18
        )
        assert report.unresolved == 0, f"stuck requests (seed {seed})"
        assert report.false_accepts == 0, f"wrong accept (seed {seed})"
        assert report.accounted, (
            f"request accounting leaked (seed {seed}): {report.statuses}"
        )
        assert report.recovered_parity, (
            f"post-chaos baseline drift (seed {seed})"
        )
        assert get_plan() is None  # the schedule cleaned up after itself

"""Tests for decision fusion, threshold calibration and IMU calibration."""

import numpy as np
import pytest

from repro.core.fusion import (
    fuse_majority,
    fuse_mean_distance,
    fuse_min_distance,
    fused_error_rates,
)
from repro.errors import ConfigError, ShapeError
from repro.eval.calibration import (
    calibrate_far,
    operating_table,
    threshold_for_target_far,
    threshold_for_target_frr,
)
from repro.imu import IDEAL_IMU, MPU9250
from repro.imu.calibration import (
    allan_deviation,
    apply_calibration,
    calibrate_static,
    find_quiet_samples,
)
from repro.types import VerificationResult


def _result(distance, threshold=0.5, user="u"):
    return VerificationResult(
        accepted=distance <= threshold,
        distance=distance,
        threshold=threshold,
        user_id=user,
    )


class TestFusionRules:
    def test_mean_distance_accepts_on_average(self):
        fused = fuse_mean_distance([_result(0.3), _result(0.6)])
        assert fused.accepted and fused.distance == pytest.approx(0.45)

    def test_min_distance_takes_best_probe(self):
        fused = fuse_min_distance([_result(0.9), _result(0.2), _result(0.7)])
        assert fused.accepted and fused.distance == pytest.approx(0.2)

    def test_majority_requires_more_than_half(self):
        assert fuse_majority([_result(0.2), _result(0.3), _result(0.9)]).accepted
        assert not fuse_majority([_result(0.2), _result(0.9), _result(0.9)]).accepted

    def test_mixed_users_rejected(self):
        with pytest.raises(ShapeError):
            fuse_mean_distance([_result(0.2, user="a"), _result(0.2, user="b")])

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            fuse_majority([])


class TestFusedErrorRates:
    def test_all_rule_trades_frr_for_far(self):
        frr, far = fused_error_rates(0.05, 0.03, num_probes=2, rule="all")
        assert frr > 0.05  # stricter: more genuine rejections
        assert far < 0.03  # stricter: fewer impostor acceptances

    def test_any_rule_trades_far_for_frr(self):
        frr, far = fused_error_rates(0.05, 0.03, num_probes=2, rule="any")
        assert frr < 0.05
        assert far > 0.03

    def test_majority_improves_both_for_small_rates(self):
        frr, far = fused_error_rates(0.05, 0.03, num_probes=3, rule="majority")
        assert frr < 0.05
        assert far < 0.03

    def test_single_probe_is_identity(self):
        for rule in ("majority", "all", "any"):
            frr, far = fused_error_rates(0.07, 0.02, 1, rule)
            assert frr == pytest.approx(0.07)
            assert far == pytest.approx(0.02)

    def test_rejects_bad_rule(self):
        with pytest.raises(ConfigError):
            fused_error_rates(0.1, 0.1, 3, rule="unanimous-ish")


class TestThresholdCalibration:
    def test_target_far_respected(self, rng):
        impostor = rng.uniform(0.5, 1.5, 1000)
        genuine = rng.uniform(0.0, 0.6, 1000)
        for target in (0.05, 0.01, 0.001):
            point = calibrate_far(genuine, impostor, target)
            assert point.far <= target + 1e-12

    def test_zero_far_rejects_all_impostors(self, rng):
        impostor = rng.uniform(0.5, 1.5, 200)
        threshold = threshold_for_target_far(impostor, 0.0)
        assert np.all(impostor > threshold)

    def test_target_frr_respected(self, rng):
        genuine = rng.uniform(0.0, 0.6, 1000)
        for target in (0.05, 0.01):
            threshold = threshold_for_target_frr(genuine, target)
            assert np.mean(genuine > threshold) <= target + 1e-12

    def test_operating_table_monotone(self, rng):
        impostor = rng.normal(0.9, 0.15, 2000)
        genuine = rng.normal(0.2, 0.1, 2000)
        table = operating_table(genuine, impostor)
        # Tighter FAR budgets force equal-or-higher FRR.
        frrs = [point.frr for point in table]
        assert frrs == sorted(frrs)

    def test_rejects_bad_target(self, rng):
        with pytest.raises(ConfigError):
            threshold_for_target_far(rng.uniform(size=10), 1.5)


class TestImuCalibration:
    def _static_recording(self, rng, bias=(30.0, -20.0, 10.0)):
        """Pure gravity + bias + mild noise, 6-axis raw counts."""
        counts = np.zeros((400, 6))
        gravity_dir = np.array([0.2, -0.3, 0.933])
        gravity_dir /= np.linalg.norm(gravity_dir)
        counts[:, :3] = gravity_dir * 9.80665 * MPU9250.accel_sensitivity
        counts[:, :3] += np.asarray(bias)
        counts[:, 3:] = np.array([12.0, -5.0, 3.0])
        counts += rng.normal(0, 2.0, counts.shape)
        return counts, gravity_dir

    def test_quiet_mask_prefers_still_regions(self, rng):
        rec, _ = self._static_recording(rng)
        rec[200:260, :3] += rng.normal(0, 500.0, (60, 3))  # a noisy burst
        quiet = find_quiet_samples(rec)
        assert quiet[:100].mean() > quiet[200:260].mean()

    def test_gravity_direction_recovered(self, rng):
        rec, gravity_dir = self._static_recording(rng)
        cal = calibrate_static(rec, MPU9250)
        assert np.dot(cal.gravity_direction, gravity_dir) > 0.999

    def test_gyro_bias_recovered(self, rng):
        rec, _ = self._static_recording(rng)
        cal = calibrate_static(rec, MPU9250)
        np.testing.assert_allclose(cal.gyro_bias_counts, [12.0, -5.0, 3.0], atol=1.0)

    def test_apply_calibration_zeroes_static_motion(self, rng):
        rec, _ = self._static_recording(rng)
        cal = calibrate_static(rec, MPU9250)
        physical = apply_calibration(rec, cal, MPU9250)
        # After gravity removal the static stream is near zero m/s^2.
        assert np.abs(physical[:, :3].mean(axis=0)).max() < 0.05
        assert np.abs(physical[:, 3:].mean(axis=0)).max() < 0.01

    def test_calibration_on_real_recording(self, population, recorder):
        recording = recorder.record(population[1])
        cal = calibrate_static(recording, MPU9250)
        # Gravity magnitude near the nominal 1 g in counts.
        nominal = 9.80665 * MPU9250.accel_sensitivity
        assert cal.gravity_magnitude_counts == pytest.approx(nominal, rel=0.1)

    def test_allan_deviation_white_noise_slope(self, rng):
        samples = rng.normal(0.0, 1.0, 100_000)
        taus, adev = allan_deviation(samples, 350.0)
        # White noise: adev ~ tau^(-1/2); check the log-log slope.
        slope = np.polyfit(np.log(taus[:10]), np.log(adev[:10]), 1)[0]
        assert slope == pytest.approx(-0.5, abs=0.1)

    def test_allan_needs_enough_samples(self):
        with pytest.raises(ShapeError):
            allan_deviation(np.zeros(8), 350.0)

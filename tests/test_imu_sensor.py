"""IMU sensor and recorder tests."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.errors import ConfigError
from repro.imu import IDEAL_IMU, MPU9250, Recorder
from repro.imu.sensor import IMUSensor
from repro.physio.conditions import NOMINAL, RecordingCondition
from repro.physio.propagation import BodyLocation
from repro.types import Activity, EarSide


class TestCaptureBatch:
    def test_shapes(self, population, rng):
        sensor = IMUSensor(MPU9250)
        out = sensor.capture_batch(population[0], NOMINAL, 3, rng)
        assert out.shape == (3, 210, 6)

    def test_counts_within_word_range(self, population, rng):
        sensor = IMUSensor(MPU9250)
        out = sensor.capture_batch(population[1], NOMINAL, 5, rng)
        assert out.max() <= 32767.0
        assert out.min() >= -32768.0

    def test_quantized_to_integers(self, population, rng):
        sensor = IMUSensor(MPU9250)
        out = sensor.capture_batch(population[0], NOMINAL, 1, rng)
        np.testing.assert_array_equal(out, np.rint(out))

    def test_gravity_offset_present(self, population, rng):
        """Accelerometer axes carry distinct static offsets (Fig. 5b)."""
        sensor = IMUSensor(IDEAL_IMU)
        out = sensor.capture_batch(population[0], NOMINAL, 1, rng)[0]
        means = out[:30, :3].mean(axis=0)
        norm = np.linalg.norm(means)
        assert norm == pytest.approx(IDEAL_IMU.gravity_counts, rel=0.05)
        assert len(np.unique(np.round(means))) == 3

    def test_silent_leadin_then_vibration(self, population, rng):
        sensor = IMUSensor(MPU9250)
        out = sensor.capture_batch(population[1], NOMINAL, 1, rng)[0]
        silent = out[:30, :3].std(axis=0).max()
        voiced = out[120:, :3].std(axis=0).max()
        assert voiced > 10 * silent

    def test_walk_adds_low_frequency_motion(self, population):
        quiet = IMUSensor(IDEAL_IMU).capture_batch(
            population[0], NOMINAL, 1, np.random.default_rng(3)
        )[0]
        moving = IMUSensor(IDEAL_IMU).capture_batch(
            population[0],
            RecordingCondition(activity=Activity.WALK),
            1,
            np.random.default_rng(3),
        )[0]
        assert moving[:, 2].std() > quiet[:, 2].std()

    def test_rejects_zero_trials(self, population, rng):
        with pytest.raises(ConfigError):
            IMUSensor(MPU9250).capture_batch(population[0], NOMINAL, 0, rng)

    def test_rejects_bad_amplitude_scale(self):
        with pytest.raises(ConfigError):
            IMUSensor(MPU9250, amplitude_scale=-1.0)


class TestLocationCapture:
    def test_fig1_ordering(self, population, recorder):
        """Vibration strength decays throat > mandible > ear (Fig. 1)."""
        person = population[1]
        stds = {}
        for loc in BodyLocation:
            sig = recorder.record_at_location(person, loc)
            stds[loc] = float(sig[:, :3].std(axis=0).max())
        assert stds[BodyLocation.THROAT] > stds[BodyLocation.MANDIBLE]
        assert stds[BodyLocation.MANDIBLE] > stds[BodyLocation.EAR]


class TestRecorder:
    def test_deterministic_per_trial_index(self, population):
        rec = Recorder(seed=9)
        a = rec.record(population[0], trial_index=4)
        b = rec.record(population[0], trial_index=4)
        np.testing.assert_array_equal(a, b)

    def test_different_trials_differ(self, population):
        rec = Recorder(seed=9)
        a = rec.record(population[0], trial_index=0)
        b = rec.record(population[0], trial_index=1)
        assert not np.array_equal(a, b)

    def test_different_people_differ(self, population):
        rec = Recorder(seed=9)
        a = rec.record(population[0], trial_index=0)
        b = rec.record(population[1], trial_index=0)
        assert not np.array_equal(a, b)

    def test_session_shape(self, population):
        rec = Recorder(seed=9)
        session = rec.record_session(population[0], 4)
        assert session.shape == (4, 210, 6)

    def test_session_rejects_zero_trials(self, population):
        with pytest.raises(ConfigError):
            Recorder(seed=9).record_session(population[0], 0)

    def test_custom_sampling_config(self, population):
        rec = Recorder(seed=0, sampling=SamplingConfig(duration_s=0.4))
        out = rec.record(population[0])
        assert out.shape == (140, 6)

    def test_left_ear_condition_changes_signal(self, population):
        rec = Recorder(seed=9)
        right = rec.record(population[1], trial_index=0)
        left = rec.record(
            population[1], RecordingCondition(ear_side=EarSide.LEFT), trial_index=0
        )
        assert not np.array_equal(right, left)

"""Neural-network layer tests with numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ModelError, ShapeError
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
)
from repro.nn.gradcheck import check_layer_input_grad, check_layer_param_grads

TOL = 1e-6


class TestConv2d:
    def test_output_shape_paper_stride(self, rng):
        """3x3 kernel, stride 1x2, padding 1: (6, 30) -> (6, 15)."""
        conv = Conv2d(1, 8, (3, 3), (1, 2), (1, 1), rng=rng)
        out = conv(rng.normal(size=(2, 1, 6, 30)))
        assert out.shape == (2, 8, 6, 15)

    def test_input_gradient(self, rng):
        conv = Conv2d(2, 3, (3, 3), (1, 2), (1, 1), rng=rng)
        x = rng.normal(size=(2, 2, 6, 10))
        assert check_layer_input_grad(conv, x) < TOL

    def test_parameter_gradients(self, rng):
        conv = Conv2d(2, 3, (3, 3), (1, 2), (1, 1), rng=rng)
        x = rng.normal(size=(2, 2, 6, 10))
        errors = check_layer_param_grads(conv, x)
        assert max(errors.values()) < TOL

    def test_rejects_wrong_channels(self, rng):
        conv = Conv2d(2, 3, rng=rng)
        with pytest.raises(ShapeError):
            conv(rng.normal(size=(1, 5, 6, 10)))

    def test_backward_before_forward_raises(self, rng):
        conv = Conv2d(1, 1, rng=rng)
        with pytest.raises(ModelError):
            conv.backward(np.zeros((1, 1, 6, 10)))

    def test_known_convolution_value(self):
        conv = Conv2d(1, 1, (3, 3), (1, 1), (0, 0))
        conv.weight.data[...] = 1.0
        conv.bias.data[...] = 0.0
        x = np.ones((1, 1, 3, 3))
        assert conv(x)[0, 0, 0, 0] == pytest.approx(9.0)


class TestBatchNorm2d:
    def test_normalises_in_training(self, rng):
        bn = BatchNorm2d(4)
        x = rng.normal(3.0, 5.0, size=(8, 4, 6, 10))
        out = bn(x)
        assert abs(out.mean()) < 1e-6
        assert out.std() == pytest.approx(1.0, rel=0.01)

    def test_running_stats_converge(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        for _ in range(30):
            bn(rng.normal(7.0, 2.0, size=(16, 2, 4, 4)))
        np.testing.assert_allclose(bn.running_mean, [7.0, 7.0], atol=0.3)
        np.testing.assert_allclose(bn.running_var, [4.0, 4.0], rtol=0.3)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        for _ in range(10):
            bn(rng.normal(7.0, 2.0, size=(16, 2, 4, 4)))
        bn.eval()
        x = rng.normal(7.0, 2.0, size=(4, 2, 4, 4))
        out1 = bn(x)
        out2 = bn(x)
        np.testing.assert_array_equal(out1, out2)

    def test_input_gradient_training(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(size=(4, 3, 2, 5))
        assert check_layer_input_grad(bn, x) < TOL

    def test_parameter_gradients(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(size=(4, 3, 2, 5))
        errors = check_layer_param_grads(bn, x)
        assert max(errors.values()) < 1e-4  # running stats shift slightly

    def test_rejects_wrong_channels(self, rng):
        with pytest.raises(ShapeError):
            BatchNorm2d(3)(rng.normal(size=(2, 4, 3, 3)))


class TestActivations:
    def test_relu_forward(self):
        out = ReLU()(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_relu_gradient(self, rng):
        x = rng.normal(size=(4, 7)) + 0.1  # avoid the kink at zero
        assert check_layer_input_grad(ReLU(), x) < TOL

    def test_sigmoid_range(self, rng):
        out = Sigmoid()(rng.normal(0, 10, size=100))
        assert np.all((out > 0.0) & (out < 1.0))

    def test_sigmoid_extreme_stability(self):
        out = Sigmoid()(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))

    def test_sigmoid_gradient(self, rng):
        x = rng.normal(size=(3, 5))
        assert check_layer_input_grad(Sigmoid(), x) < TOL


class TestLinear:
    def test_affine_map(self, rng):
        lin = Linear(3, 2, rng=rng)
        lin.weight.data = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
        lin.bias.data = np.array([1.0, -1.0])
        out = lin(np.array([[1.0, 2.0, 3.0]]))
        np.testing.assert_allclose(out, [[2.0, 3.0]])

    def test_gradients(self, rng):
        lin = Linear(5, 4, rng=rng)
        x = rng.normal(size=(3, 5))
        assert check_layer_input_grad(lin, x) < TOL
        assert max(check_layer_param_grads(lin, x).values()) < TOL

    def test_rejects_wrong_features(self, rng):
        with pytest.raises(ShapeError):
            Linear(5, 4, rng=rng)(rng.normal(size=(3, 6)))


class TestFlattenDropout:
    def test_flatten_round_trip(self, rng):
        flat = Flatten()
        x = rng.normal(size=(2, 3, 4, 5))
        out = flat(x)
        assert out.shape == (2, 60)
        back = flat.backward(out)
        np.testing.assert_array_equal(back, x)

    def test_dropout_eval_is_identity(self, rng):
        drop = Dropout(0.5)
        drop.eval()
        x = rng.normal(size=(4, 10))
        np.testing.assert_array_equal(drop(x), x)

    def test_dropout_preserves_expectation(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((200, 200))
        out = drop(x)
        assert out.mean() == pytest.approx(1.0, rel=0.05)

    def test_dropout_rejects_bad_p(self):
        with pytest.raises(ShapeError):
            Dropout(1.0)


class TestSequential:
    def test_forward_backward_chain_gradient(self, rng):
        net = Sequential(
            Conv2d(1, 2, (3, 3), (1, 2), (1, 1), rng=rng),
            BatchNorm2d(2),
            ReLU(),
            Flatten(),
            Linear(2 * 4 * 4, 3, rng=rng),
            Sigmoid(),
        )
        x = rng.normal(size=(3, 1, 4, 8))
        assert check_layer_input_grad(net, x) < 1e-5

    def test_parameter_traversal(self, rng):
        net = Sequential(Linear(3, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        assert len(net.parameters()) == 4
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_train_eval_propagates(self, rng):
        net = Sequential(BatchNorm2d(2), Dropout(0.3))
        net.eval()
        assert not net[0].training and not net[1].training
        net.train()
        assert net[0].training and net[1].training

    def test_zero_grad_resets(self, rng):
        lin = Linear(3, 2, rng=rng)
        lin(rng.normal(size=(2, 3)))
        lin.backward(np.ones((2, 2)))
        assert np.any(lin.weight.grad != 0.0)
        lin.zero_grad()
        assert np.all(lin.weight.grad == 0.0)


class TestStateDict:
    def test_round_trip(self, rng):
        net = Sequential(Conv2d(1, 2, rng=rng), BatchNorm2d(2), Flatten())
        net(rng.normal(size=(2, 1, 4, 4)))  # populate running stats
        state = net.state_dict()
        net2 = Sequential(
            Conv2d(1, 2, rng=np.random.default_rng(99)), BatchNorm2d(2), Flatten()
        )
        net2.load_state(state)
        x = rng.normal(size=(1, 1, 4, 4))
        net.eval(), net2.eval()
        np.testing.assert_array_equal(net(x), net2(x))

    def test_missing_key_raises(self, rng):
        net = Sequential(Linear(3, 2, rng=rng))
        with pytest.raises(ModelError):
            net.load_state({})

    def test_shape_mismatch_raises(self, rng):
        net = Sequential(Linear(3, 2, rng=rng))
        state = net.state_dict()
        bad = {k: np.zeros((1, 1)) for k in state}
        with pytest.raises(ModelError):
            net.load_state(bad)

"""Negative paths of the fusion layer: guards and config validation.

Complements the hypothesis suite in ``test_fusion_properties.py`` (the
happy-path invariants) by pinning every rejection branch: mixed users,
mismatched thresholds, empty inputs, malformed weights, and every
``FusionConfig`` validation rule.
"""

from __future__ import annotations

import math

import pytest

from repro.config import FusionConfig
from repro.core.fusion import (
    calibrated_fusion_weights,
    fuse_decision_level,
    fuse_majority,
    fuse_mean_distance,
    fuse_min_distance,
    fuse_score_level,
    fused_error_rates,
)
from repro.errors import ConfigError, ShapeError
from repro.types import VerificationResult


def _result(distance=0.2, threshold=0.5, user_id="u"):
    return VerificationResult(
        accepted=distance <= threshold,
        distance=distance,
        threshold=threshold,
        user_id=user_id,
    )


MULTI_PROBE_RULES = (fuse_mean_distance, fuse_min_distance, fuse_majority)


class TestMultiProbeGuards:
    @pytest.mark.parametrize("rule", MULTI_PROBE_RULES)
    def test_empty_rejected(self, rule):
        with pytest.raises(ShapeError, match="at least one"):
            rule([])

    @pytest.mark.parametrize("rule", MULTI_PROBE_RULES)
    def test_mixed_users_rejected(self, rule):
        with pytest.raises(ShapeError, match="different users"):
            rule([_result(user_id="alice"), _result(user_id="bob")])

    @pytest.mark.parametrize("rule", MULTI_PROBE_RULES)
    def test_mixed_thresholds_rejected(self, rule):
        with pytest.raises(ShapeError, match="different thresholds"):
            rule([_result(threshold=0.4), _result(threshold=0.5)])


class TestMultiModalGuards:
    def test_empty_rejected(self):
        with pytest.raises(ShapeError, match="at least one"):
            fuse_score_level([])
        with pytest.raises(ShapeError, match="at least one"):
            fuse_decision_level([])

    def test_mixed_users_rejected(self):
        results = [_result(user_id="alice"), _result(user_id="bob")]
        with pytest.raises(ShapeError, match="different users"):
            fuse_score_level(results)
        with pytest.raises(ShapeError, match="different users"):
            fuse_decision_level(results, rule="or")

    def test_differing_thresholds_allowed(self):
        """Each modality runs at its own operating point."""
        results = [_result(0.2, 0.4), _result(0.3, 0.6)]
        fused = fuse_score_level(results)
        assert fused.threshold == 1.0

    def test_weight_count_mismatch(self):
        results = [_result(), _result()]
        with pytest.raises(ShapeError, match="2 results"):
            fuse_score_level(results, weights=[1.0])
        with pytest.raises(ShapeError, match="2 results"):
            fuse_decision_level(results, rule="vote", weights=[1.0, 2.0, 3.0])

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf, math.nan])
    def test_non_positive_or_non_finite_weights(self, bad):
        results = [_result(), _result()]
        with pytest.raises(ConfigError, match="positive and finite"):
            fuse_score_level(results, weights=[1.0, bad])

    def test_unknown_decision_rule(self):
        with pytest.raises(ConfigError, match="rule"):
            fuse_decision_level([_result()], rule="xor")


class TestAnalyticalGuards:
    @pytest.mark.parametrize("frr,far", [(-0.1, 0.1), (0.1, 1.5)])
    def test_rates_out_of_range(self, frr, far):
        with pytest.raises(ConfigError, match="lie in"):
            fused_error_rates(frr, far, 3)

    def test_non_positive_probes(self):
        with pytest.raises(ConfigError, match="positive"):
            fused_error_rates(0.1, 0.1, 0)

    def test_unknown_rule(self):
        with pytest.raises(ConfigError, match="rule"):
            fused_error_rates(0.1, 0.1, 3, rule="median")

    def test_calibrated_weights_guards(self):
        with pytest.raises(ShapeError, match="at least one"):
            calibrated_fusion_weights([])
        with pytest.raises(ConfigError, match="lie in"):
            calibrated_fusion_weights([(0.1, 1.2)])


class TestFusionConfigValidation:
    def test_defaults_are_disabled_parity(self):
        cfg = FusionConfig()
        assert not cfg.enabled
        assert cfg.mode == "score"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "average"},
            {"rule": "xor"},
            {"imu_weight": 0.0},
            {"imu_weight": -2.0},
            {"heartbeat_weight": 0.0},
            {"heartbeat_threshold": 0.0},
            {"heartbeat_threshold": 2.0},
            {"heartbeat_scoring": "euclidean"},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            FusionConfig(**kwargs)

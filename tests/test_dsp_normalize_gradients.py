"""Normalisation and gradient transform tests (Section IV/V-B)."""

import numpy as np
import pytest

from repro.dsp.gradients import (
    gradient_array,
    gradient_array_batch,
    resample_to_length,
    signal_gradients,
    split_directions,
)
from repro.dsp.normalize import concat_axes, min_max_normalize, z_score_normalize
from repro.errors import ShapeError


class TestMinMaxNormalize:
    def test_maps_to_unit_interval(self, rng):
        segment = rng.normal(50.0, 10.0, size=(6, 60))
        out = min_max_normalize(segment)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_eq7_formula(self):
        segment = np.array([2.0, 4.0, 6.0])
        np.testing.assert_allclose(min_max_normalize(segment), [0.0, 0.5, 1.0])

    def test_per_axis_independence(self):
        """Each axis normalises with its own min/max (the Eq. 7 point)."""
        segment = np.stack([np.linspace(0, 1, 10), np.linspace(0, 1000, 10)])
        out = min_max_normalize(segment, axis=-1)
        np.testing.assert_allclose(out[0], out[1])

    def test_constant_axis_maps_to_zero(self):
        out = min_max_normalize(np.full((2, 5), 7.0))
        assert np.all(out == 0.0)

    def test_scale_invariance(self, rng):
        segment = rng.normal(size=30)
        np.testing.assert_allclose(
            min_max_normalize(segment), min_max_normalize(segment * 100 + 5)
        )


class TestZScore:
    def test_zero_mean_unit_std(self, rng):
        out = z_score_normalize(rng.normal(5.0, 3.0, size=1000))
        assert abs(out.mean()) < 1e-12
        assert out.std() == pytest.approx(1.0)

    def test_constant_maps_to_zero(self):
        assert np.all(z_score_normalize(np.full(10, 3.0)) == 0.0)


class TestConcatAxes:
    def test_stacks_segments(self):
        out = concat_axes([np.zeros(5), np.ones(5)])
        assert out.shape == (2, 5)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ShapeError):
            concat_axes([np.zeros(5), np.zeros(6)])

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            concat_axes([])


class TestSignalGradients:
    def test_diff_semantics(self):
        signal = np.tile(np.array([1.0, 3.0, 2.0, 5.0]), (6, 1))
        grads = signal_gradients(signal)
        np.testing.assert_allclose(grads[0], [2.0, -1.0, 3.0])

    def test_shape(self):
        assert signal_gradients(np.zeros((6, 60))).shape == (6, 59)


class TestResample:
    def test_identity_when_same_length(self):
        values = np.array([1.0, 5.0, 2.0])
        np.testing.assert_allclose(resample_to_length(values, 3), values)

    def test_endpoint_preserving(self):
        values = np.array([1.0, 2.0, 3.0, 10.0])
        out = resample_to_length(values, 7)
        assert out[0] == 1.0 and out[-1] == 10.0

    def test_empty_yields_zeros(self):
        np.testing.assert_array_equal(resample_to_length(np.array([]), 4), np.zeros(4))

    def test_single_value_repeats(self):
        np.testing.assert_array_equal(
            resample_to_length(np.array([3.0]), 4), np.full(4, 3.0)
        )

    def test_rejects_bad_length(self):
        with pytest.raises(ShapeError):
            resample_to_length(np.zeros(3), 0)


class TestSplitDirections:
    def test_sign_partition(self):
        grads = np.array([1.0, -2.0, 3.0, -4.0, 0.0])
        out = split_directions(grads, 3)
        assert np.all(out[0] >= 0.0)
        assert np.all(out[1] < 0.0)

    def test_zero_counts_as_positive(self):
        out = split_directions(np.array([0.0, -1.0]), 2)
        assert np.all(out[0] == 0.0)

    def test_all_positive_gives_zero_negative_row(self):
        out = split_directions(np.array([1.0, 2.0, 3.0]), 4)
        assert np.all(out[1] == 0.0)


class TestGradientArray:
    def test_output_shape_matches_paper(self):
        """(6, 60) signal array -> (2, 6, 30) gradient array."""
        out = gradient_array(np.random.default_rng(0).normal(size=(6, 60)))
        assert out.shape == (2, 6, 30)

    def test_custom_width(self):
        out = gradient_array(np.zeros((6, 60)), width=10)
        assert out.shape == (2, 6, 10)

    def test_batch_matches_single(self, rng):
        arrays = rng.normal(size=(3, 6, 60))
        batch = gradient_array_batch(arrays)
        for idx in range(3):
            np.testing.assert_allclose(batch[idx], gradient_array(arrays[idx]))

    def test_batch_rejects_wrong_ndim(self):
        with pytest.raises(ShapeError):
            gradient_array_batch(np.zeros((6, 60)))

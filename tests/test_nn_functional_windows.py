"""Strided im2col/col2im, workspace reuse, and the vectorised sigmoid.

The unfold/fold pair must stay an exact adjoint pair across every
stride/padding combination the extractor can see (including the paper's
1x2 stride), because ``col2im`` *is* the convolution input gradient.
"""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import functional as F

# (kernel, stride, pad) grid: the paper's 3x3 @ 1x2 plus asymmetric
# strides/pads, no-pad, and the disjoint-window col2im fast path.
GEOMETRIES = [
    ((3, 3), (1, 2), (1, 1)),  # the paper's extractor blocks
    ((3, 3), (1, 1), (1, 1)),
    ((3, 3), (2, 1), (0, 1)),
    ((2, 3), (1, 2), (1, 0)),
    ((1, 2), (1, 2), (0, 1)),
    ((3, 1), (2, 2), (1, 0)),
    ((2, 2), (2, 2), (0, 0)),  # disjoint windows: strided-view scatter
    ((2, 2), (3, 3), (1, 1)),  # stride > kernel, padded
    ((1, 1), (1, 1), (0, 0)),
]


def _im2col_reference(x, kernel, stride, pad):
    """The historical kh*kw slice-copy implementation, kept as oracle."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = pad
    batch, channels, height, width = x.shape
    out_h = F.conv_output_size(height, kh, sh, ph)
    out_w = F.conv_output_size(width, kw, sw, pw)
    padded = F.pad2d(x, ph, pw)
    cols = np.empty((batch, channels, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j, :, :] = padded[
                :, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw
            ]
    return cols.reshape(batch, channels * kh * kw, out_h * out_w)


@pytest.mark.parametrize("kernel,stride,pad", GEOMETRIES)
class TestStridedIm2col:
    def test_matches_loop_reference(self, kernel, stride, pad, rng):
        x = rng.normal(size=(3, 2, 7, 10))
        np.testing.assert_array_equal(
            F.im2col(x, kernel, stride, pad),
            _im2col_reference(x, kernel, stride, pad),
        )

    def test_adjoint_identity(self, kernel, stride, pad, rng):
        """<im2col(x), c> == <x, col2im(c)> — the defining adjoint pair."""
        shape = (2, 3, 6, 9)
        x = rng.normal(size=shape)
        cols = F.im2col(x, kernel, stride, pad)
        c = rng.normal(size=cols.shape)
        lhs = float(np.vdot(cols, c))
        rhs = float(np.vdot(x, F.col2im(c, shape, kernel, stride, pad)))
        assert lhs == pytest.approx(rhs, rel=1e-12, abs=1e-9)

    def test_roundtrip_counts_window_coverage(self, kernel, stride, pad):
        """col2im(im2col(ones)) counts how many windows cover each cell."""
        shape = (1, 1, 6, 9)
        ones = np.ones(shape)
        cols = F.im2col(ones, kernel, stride, pad)
        coverage = F.col2im(cols, shape, kernel, stride, pad)
        assert coverage.shape == shape
        # Every count is a non-negative integer bounded by the kernel area.
        assert np.all(coverage == np.round(coverage))
        assert coverage.max() <= kernel[0] * kernel[1]


class TestWorkspaceReuse:
    def test_reuse_values_match_fresh(self, rng):
        x = rng.normal(size=(2, 1, 6, 31))
        fresh = F.im2col(x, (3, 3), (1, 2), (1, 1))
        reused = F.im2col(x, (3, 3), (1, 2), (1, 1), reuse=True)
        np.testing.assert_array_equal(fresh, reused)

    def test_reuse_returns_same_buffer(self, rng):
        F.clear_workspaces()
        x = rng.normal(size=(2, 1, 6, 31))
        a = F.im2col(x, (3, 3), (1, 2), (1, 1), reuse=True)
        y = rng.normal(size=(2, 1, 6, 31))
        b = F.im2col(y, (3, 3), (1, 2), (1, 1), reuse=True)
        # Same workspace buffer: the second call overwrote the first
        # result (the documented aliasing contract of reuse=True)...
        assert np.shares_memory(a, b)
        # ...and the overwritten contents are the second call's columns.
        np.testing.assert_array_equal(b, F.im2col(y, (3, 3), (1, 2), (1, 1)))

    def test_padding_border_stays_zero_across_reuses(self, rng):
        F.clear_workspaces()
        for trial in range(3):
            x = rng.normal(size=(1, 1, 4, 4)) + trial
            got = F.im2col(x, (3, 3), (1, 1), (1, 1), reuse=True)
            np.testing.assert_array_equal(got, _im2col_reference(x, (3, 3), (1, 1), (1, 1)))

    def test_distinct_shapes_do_not_collide(self, rng):
        F.clear_workspaces()
        x = rng.normal(size=(2, 1, 6, 31))
        y = rng.normal(size=(2, 1, 6, 16))
        a = F.im2col(x, (3, 3), (1, 2), (1, 1), reuse=True)
        b = F.im2col(y, (3, 3), (1, 2), (1, 1), reuse=True)
        assert not np.shares_memory(a, b)
        np.testing.assert_array_equal(a, _im2col_reference(x, (3, 3), (1, 2), (1, 1)))

    def test_float32_workspace_keeps_dtype(self, rng):
        x = rng.normal(size=(2, 1, 6, 31)).astype(np.float32)
        out = F.im2col(x, (3, 3), (1, 2), (1, 1), reuse=True)
        assert out.dtype == np.float32


class TestSlidingWindows:
    def test_view_matches_slices(self, rng):
        x = rng.normal(size=(2, 3, 6, 8))
        view = F.sliding_windows(x, (2, 3), (2, 1))
        for i in range(2):
            for j in range(3):
                np.testing.assert_array_equal(
                    view[:, :, :, :, i, j],
                    x[:, :, i : i + 2 * view.shape[2] : 2, j : j + view.shape[3]],
                )

    def test_view_is_zero_copy_and_read_only(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        view = F.sliding_windows(x, (2, 2), (2, 2))
        assert np.shares_memory(view, x)
        with pytest.raises(ValueError):
            view[0, 0, 0, 0, 0, 0] = 1.0

    def test_rejects_bad_rank(self):
        with pytest.raises(ShapeError):
            F.sliding_windows(np.zeros((3, 4)), (2, 2), (1, 1))


class TestVectorisedSigmoid:
    def test_matches_closed_form(self, rng):
        x = rng.normal(0.0, 3.0, size=(5, 7))
        np.testing.assert_allclose(F.sigmoid(x), 1.0 / (1.0 + np.exp(-x)), rtol=1e-12)

    def test_extreme_stability(self):
        with np.errstate(over="raise"):
            out = F.sigmoid(np.array([-1000.0, -50.0, 0.0, 50.0, 1000.0]))
        assert np.all(np.isfinite(out))
        assert out[0] == 0.0 and out[-1] == 1.0
        assert out[2] == 0.5

    def test_preserves_float32(self):
        out = F.sigmoid(np.linspace(-10, 10, 11, dtype=np.float32))
        assert out.dtype == np.float32
        assert np.all((out >= 0.0) & (out <= 1.0))

    def test_integer_input_promotes_to_float64(self):
        out = F.sigmoid(np.array([-3, 0, 3]))
        assert out.dtype == np.float64
        assert out[1] == 0.5

    def test_float32_float64_agree(self, rng):
        x = rng.normal(0.0, 4.0, size=256)
        np.testing.assert_allclose(
            F.sigmoid(x.astype(np.float32)), F.sigmoid(x), atol=1e-6
        )

"""Dataset generation, splitting, caching and standard specs."""

import dataclasses

import numpy as np
import pytest

from repro.datasets import DatasetCache, DatasetSpec, generate_dataset
from repro.datasets.splits import (
    enrollment_probe_split,
    leave_one_person_out,
    per_person_split,
)
from repro.datasets.standard import condition_spec, hired_spec, user_spec
from repro.datasets.synth import generate_recordings
from repro.errors import ConfigError
from repro.physio.conditions import RecordingCondition
from repro.types import Activity


SMALL = DatasetSpec(num_people=4, num_female=1, trials_per_person=5)


class TestGenerate:
    def test_shapes_and_labels(self):
        ds = generate_dataset(SMALL)
        assert ds.signal_arrays.shape[1:] == (6, 60)
        assert ds.features.shape[1:] == (2, 6, 31)
        assert len(ds) == ds.labels.shape[0] == ds.trial_ids.shape[0]
        assert set(ds.labels.tolist()) <= {0, 1, 2, 3}

    def test_deterministic(self):
        a = generate_dataset(SMALL)
        b = generate_dataset(SMALL)
        np.testing.assert_array_equal(a.features, b.features)

    def test_recordings_shape(self):
        recs, labels, profiles = generate_recordings(SMALL)
        assert recs.shape == (20, 210, 6)
        assert len(profiles) == 4

    def test_segment_offsets_multiply_segments(self):
        multi = dataclasses.replace(SMALL, segment_offsets=(-4, 0, 4))
        ds = generate_dataset(multi)
        base = generate_dataset(SMALL)
        assert len(ds) > 2 * len(base)
        # Segments from one recording share a trial id.
        first_trial = ds.trial_ids == ds.trial_ids[0]
        assert first_trial.sum() == 3

    def test_axis_masking_zeroes_tail_axes(self):
        masked = dataclasses.replace(SMALL, max_axes=2)
        ds = generate_dataset(masked)
        assert np.all(ds.signal_arrays[:, 2:, :] == 0.0)
        assert np.any(ds.signal_arrays[:, :2, :] != 0.0)

    def test_gradient_frontend_width(self):
        spec = dataclasses.replace(SMALL, frontend="gradient")
        ds = generate_dataset(spec)
        assert ds.features.shape[1:] == (2, 6, 30)

    def test_subset_people_relabel(self):
        ds = generate_dataset(SMALL)
        sub = ds.subset_people([2, 3])
        assert set(sub.labels.tolist()) <= {0, 1}
        assert len(sub.profiles) == 2
        assert sub.profiles[0].person_id == ds.profiles[2].person_id

    def test_rejects_bad_spec(self):
        with pytest.raises(ConfigError):
            DatasetSpec(trials_per_person=0)
        with pytest.raises(ConfigError):
            DatasetSpec(max_axes=7)
        with pytest.raises(ConfigError):
            DatasetSpec(segment_offsets=())
        with pytest.raises(ConfigError):
            DatasetSpec(frontend="nope")

    def test_cache_key_distinguishes_specs(self):
        other = dataclasses.replace(SMALL, recorder_seed=9)
        assert SMALL.cache_key() != other.cache_key()
        cond = dataclasses.replace(
            SMALL, condition=RecordingCondition(activity=Activity.RUN)
        )
        assert SMALL.cache_key() != cond.cache_key()


class TestSplits:
    def test_per_person_split_fractions(self):
        labels = np.repeat(np.arange(4), 10)
        train, test = per_person_split(labels, 0.2, seed=0)
        for person in range(4):
            assert np.sum(test & (labels == person)) == 2
        assert not np.any(train & test)

    def test_leave_one_out(self):
        labels = np.repeat(np.arange(3), 4)
        others, target = leave_one_person_out(labels, 1)
        assert target.sum() == 4
        assert np.all(labels[target] == 1)
        assert not np.any(others & target)

    def test_leave_one_out_missing_person(self):
        with pytest.raises(ConfigError):
            leave_one_person_out(np.zeros(4, dtype=int), 7)

    def test_enrollment_probe_split(self):
        labels = np.repeat(np.arange(3), 10)
        enroll, probe = enrollment_probe_split(labels, 4, seed=0)
        for person in range(3):
            assert np.sum(enroll & (labels == person)) == 4
        assert np.all(enroll ^ probe)

    def test_enrollment_needs_spare_trials(self):
        labels = np.repeat(np.arange(2), 3)
        with pytest.raises(ConfigError):
            enrollment_probe_split(labels, 3)


class TestCache:
    def test_round_trip(self, tmp_path):
        cache = DatasetCache(tmp_path)
        first = cache.get(SMALL)
        assert (tmp_path / f"{SMALL.cache_key()}.npz").exists()
        second = cache.get(SMALL)
        np.testing.assert_array_equal(first.features, second.features)
        np.testing.assert_array_equal(first.labels, second.labels)
        assert [p.person_id for p in first.profiles] == [
            p.person_id for p in second.profiles
        ]

    def test_clear(self, tmp_path):
        cache = DatasetCache(tmp_path)
        cache.get(SMALL)
        assert cache.clear() == 1
        assert cache.clear() == 0

    def test_custom_preprocess_not_cached(self, tmp_path):
        from repro.config import PreprocessConfig

        cache = DatasetCache(tmp_path)
        cache.get(SMALL, preprocess=PreprocessConfig(segment_length=40))
        assert not list(tmp_path.glob("*.npz"))


class TestStandardSpecs:
    def test_populations_disjoint(self):
        assert hired_spec().population_seed != user_spec().population_seed

    def test_hired_uses_training_offsets(self):
        assert len(hired_spec().segment_offsets) > 1
        assert user_spec().segment_offsets == (0,)

    def test_user_spec_paper_composition(self):
        spec = user_spec()
        assert spec.num_people == 34
        assert spec.num_female == 6

    def test_condition_spec_keeps_population(self):
        cond = condition_spec(RecordingCondition(activity=Activity.WALK))
        assert cond.population_seed == user_spec().population_seed
        assert cond.condition.activity is Activity.WALK

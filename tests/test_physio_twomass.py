"""Two-mass oscillator tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.physio.twomass import TwoMassOscillator, one_dof_fidelity
from repro.physio.vibration import MandibleOscillator

RATE = 5600.0


def _impulse(steps: int = 4000) -> np.ndarray:
    forcing = np.zeros(steps)
    forcing[10] = 1.0
    return forcing


class TestTwoMassOscillator:
    def test_two_distinct_modes(self, population):
        model = TwoMassOscillator(population[0])
        low, high = model.mode_frequencies_hz()
        assert 0.0 < low < high

    def test_low_mode_below_one_dof_natural(self, population):
        """Coupling splits the spectrum around the one-DOF frequency."""
        person = population[0]
        low, high = TwoMassOscillator(person).mode_frequencies_hz()
        assert low < person.natural_frequency_hz * 1.5
        assert high > person.natural_frequency_hz * 0.8

    def test_impulse_rings_and_decays(self, population):
        model = TwoMassOscillator(population[1])
        disp, _, _ = model.simulate(_impulse(), RATE)
        early = np.abs(disp[:800]).max()
        late = np.abs(disp[-800:]).max()
        assert late < 0.3 * early

    def test_strong_coupling_changes_the_spectrum(self, population):
        """With strong coupling the primary mass's response measurably
        departs from the one-DOF model (the modes are heavily damped, so
        we assert spectral divergence rather than two sharp peaks)."""
        person = population[1]
        impulse = _impulse(8000)
        _, _, acc_two = TwoMassOscillator(person, coupling_ratio=2.0).simulate(
            impulse, RATE
        )
        _, _, acc_one = MandibleOscillator(person).simulate(impulse, RATE)
        spec_two = np.abs(np.fft.rfft(acc_two))
        spec_one = np.abs(np.fft.rfft(acc_one))
        cos = float(
            spec_two @ spec_one
            / (np.linalg.norm(spec_two) * np.linalg.norm(spec_one))
        )
        assert cos < 0.995  # distinguishable ...
        assert cos > 0.3    # ... but still the same kind of system

    def test_rest_stays_at_rest(self, population):
        model = TwoMassOscillator(population[0])
        disp, vel, acc = model.simulate(np.zeros(1000), RATE)
        assert np.all(disp == 0.0) and np.all(acc == 0.0)

    def test_rejects_undersampling(self, population):
        with pytest.raises(ConfigError):
            TwoMassOscillator(population[0]).simulate(np.zeros(100), 200.0)

    def test_rejects_bad_split(self, population):
        with pytest.raises(ConfigError):
            TwoMassOscillator(population[0], split=0.05)

    def test_rejects_2d_forcing(self, population):
        with pytest.raises(ShapeError):
            TwoMassOscillator(population[0]).simulate(np.zeros((2, 10)), RATE)


class TestOneDofFidelity:
    def test_fidelity_in_unit_interval(self, population):
        value = one_dof_fidelity(population[0], rate_hz=RATE)
        assert 0.0 <= value <= 1.0

    def test_one_dof_is_reasonable_approximation(self, population):
        """The paper's simplification holds to first order: the spectra
        of the two models stay well correlated."""
        values = [one_dof_fidelity(p, rate_hz=RATE) for p in population[:4]]
        assert min(values) > 0.5

    def test_weak_coupling_converges_to_one_dof(self, population):
        """With a vanishing secondary mass and coupling, the primary mass
        behaves like the one-DOF system."""
        person = population[2]
        two = TwoMassOscillator(person, split=0.9, coupling_ratio=0.05)
        one = MandibleOscillator(person)
        impulse = _impulse()
        d_two, _, _ = two.simulate(impulse, RATE)
        d_one, _, _ = one.simulate(impulse, RATE)
        # Not identical (different masses), but strongly correlated.
        corr = np.corrcoef(d_two, d_one)[0, 1]
        assert corr > 0.7

"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.core.similarity import cosine_distance, pairwise_cosine_distance
from repro.dsp.filters import design_highpass, frequency_response, sosfilt
from repro.dsp.gradients import resample_to_length, split_directions
from repro.dsp.normalize import min_max_normalize
from repro.dsp.outliers import mad_outlier_mask, replace_outliers
from repro.eval.metrics import false_accept_rate, false_reject_rate
from repro.security.cancelable import CancelableTransform

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def vectors(min_size=2, max_size=64):
    return arrays(
        np.float64,
        st.integers(min_size, max_size),
        elements=finite_floats,
    )


class TestSimilarityProperties:
    @given(vectors())
    def test_self_distance_zero(self, v):
        if np.linalg.norm(v) == 0.0:
            assert cosine_distance(v, v) == 1.0
        else:
            assert cosine_distance(v, v) == pytest.approx(0.0, abs=1e-9)

    @given(vectors(8, 16), st.floats(0.01, 100.0))
    def test_scale_invariance(self, v, scale):
        u = v + 1.0  # avoid exact zero vectors
        assert cosine_distance(u, u * scale) == pytest.approx(0.0, abs=1e-9)

    @given(vectors(4, 16), vectors(4, 16))
    def test_symmetry_and_range(self, u, v):
        if u.shape != v.shape:
            return
        d_uv = cosine_distance(u, v)
        d_vu = cosine_distance(v, u)
        assert d_uv == pytest.approx(d_vu, abs=1e-12)
        assert -1e-12 <= d_uv <= 2.0 + 1e-12

    @given(st.integers(2, 8), st.integers(2, 8))
    def test_pairwise_shape(self, n, m):
        rng = np.random.default_rng(0)
        out = pairwise_cosine_distance(rng.normal(size=(n, 5)), rng.normal(size=(m, 5)))
        assert out.shape == (n, m)


class TestNormalizeProperties:
    @given(
        arrays(np.float64, array_shapes(min_dims=1, max_dims=2, min_side=2, max_side=40),
               elements=finite_floats)
    )
    def test_minmax_bounds(self, segment):
        out = min_max_normalize(segment)
        assert np.all(out >= -1e-12)
        assert np.all(out <= 1.0 + 1e-12)

    @given(vectors(3, 40), st.floats(0.5, 100.0), st.floats(-100.0, 100.0))
    def test_minmax_affine_invariance(self, v, scale, shift):
        assume(v.max() - v.min() > 1e-3)  # degenerate spans lose precision
        out1 = min_max_normalize(v)
        out2 = min_max_normalize(v * scale + shift)
        np.testing.assert_allclose(out1, out2, atol=1e-5)


class TestGradientProperties:
    @given(vectors(2, 60), st.integers(1, 40))
    def test_resample_preserves_bounds(self, v, length):
        out = resample_to_length(v, length)
        assert out.shape == (length,)
        if v.size:
            assert out.min() >= v.min() - 1e-9
            assert out.max() <= v.max() + 1e-9

    @given(vectors(2, 60), st.integers(2, 30))
    def test_split_directions_partition(self, grads, width):
        out = split_directions(grads, width)
        assert out.shape == (2, width)
        assert np.all(out[0] >= -1e-12)
        assert np.all(out[1] <= 1e-12)


class TestOutlierProperties:
    @given(vectors(5, 60))
    def test_replacement_idempotent_on_mask(self, v):
        mask = mad_outlier_mask(v)
        out = replace_outliers(v, mask=mask)
        assert out.shape == v.shape
        # Non-outliers are untouched.
        np.testing.assert_array_equal(out[~mask], v[~mask])

    @given(vectors(10, 60), st.floats(100.0, 1e5))
    def test_single_spike_always_caught(self, v, magnitude):
        base = np.sin(np.linspace(0, 6, v.size))  # structured, non-constant
        spiked = base.copy()
        spiked[v.size // 2] += magnitude * (1.0 + np.abs(v[0]) / 1e6)
        mask = mad_outlier_mask(spiked)
        assert mask[v.size // 2]


class TestFilterProperties:
    @given(st.sampled_from([2, 4, 6, 8]), st.floats(5.0, 100.0))
    @settings(max_examples=20, deadline=None)
    def test_highpass_dc_rejection(self, order, cutoff):
        sos = design_highpass(order, cutoff, 350.0)
        mag0 = np.abs(frequency_response(sos, np.array([1e-3]), 350.0))[0]
        assert mag0 < 1e-3

    @given(st.sampled_from([2, 4, 8]))
    @settings(max_examples=10, deadline=None)
    def test_linearity(self, order):
        rng = np.random.default_rng(0)
        sos = design_highpass(order, 20.0, 350.0)
        x, y = rng.normal(size=100), rng.normal(size=100)
        lhs = sosfilt(sos, 2.0 * x + 3.0 * y)
        rhs = 2.0 * sosfilt(sos, x) + 3.0 * sosfilt(sos, y)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)


class TestMetricProperties:
    @given(
        arrays(np.float64, st.integers(2, 50), elements=st.floats(0.0, 2.0)),
        st.floats(0.0, 2.0),
        st.floats(0.0, 2.0),
    )
    def test_frr_monotone_in_threshold(self, distances, t1, t2):
        lo, hi = min(t1, t2), max(t1, t2)
        assert false_reject_rate(distances, lo) >= false_reject_rate(distances, hi)
        assert false_accept_rate(distances, lo) <= false_accept_rate(distances, hi)

    @given(arrays(np.float64, st.integers(2, 50), elements=st.floats(0.0, 2.0)))
    def test_far_frr_complementary_on_same_data(self, distances):
        """On identical score sets, FAR(t) + FRR(t) >= ... sanity: both in [0,1]."""
        for t in (0.0, 0.5, 1.0, 2.0):
            assert 0.0 <= false_reject_rate(distances, t) <= 1.0
            assert 0.0 <= false_accept_rate(distances, t) <= 1.0


class TestCancelableProperties:
    @given(st.integers(0, 1000), st.integers(8, 64))
    @settings(max_examples=20, deadline=None)
    def test_determinism_in_seed(self, seed, dim):
        rng = np.random.default_rng(0)
        v = rng.normal(size=dim)
        a = CancelableTransform(dim, seed=seed).apply(v)
        b = CancelableTransform(dim, seed=seed).apply(v)
        np.testing.assert_array_equal(a, b)

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_linearity(self, seed):
        transform = CancelableTransform(16, seed=seed)
        rng = np.random.default_rng(1)
        u, v = rng.normal(size=16), rng.normal(size=16)
        np.testing.assert_allclose(
            transform.apply(u + 2.0 * v),
            transform.apply(u) + 2.0 * transform.apply(v),
            atol=1e-9,
        )

    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_renewal_chain_never_repeats(self, seed):
        t = CancelableTransform(8, seed=seed)
        seeds = {t.seed}
        for _ in range(5):
            t = t.renew()
            assert t.seed not in seeds or len(seeds) > 5
            seeds.add(t.seed)


class TestBatchOutcomeProperties:
    """Invariants of the engine's per-batch bookkeeping type.

    ``BatchOutcome`` carries the success/failure partition every server
    response is built from; its constructor must reject any partition
    that is inconsistent (wrong counts, unsorted or overlapping
    indices), because downstream scatter/alignment silently produces
    wrong answers otherwise.
    """

    @staticmethod
    def _build(batch_size, failed_positions):
        from repro.core.engine import BatchItemFailure, BatchOutcome

        failed = sorted(set(failed_positions))
        success = [i for i in range(batch_size) if i not in failed]
        return BatchOutcome(
            values=np.zeros((len(success), 3)),
            indices=np.asarray(success, dtype=np.int64),
            failures=tuple(
                BatchItemFailure(index=i, error="OnsetNotFoundError", reason="x")
                for i in failed
            ),
            batch_size=batch_size,
        )

    @given(st.integers(0, 24), st.data())
    @settings(max_examples=60, deadline=None)
    def test_valid_partitions_hold_invariants(self, batch_size, data):
        failed = data.draw(
            st.lists(st.integers(0, max(0, batch_size - 1)), max_size=batch_size)
            if batch_size
            else st.just([])
        )
        outcome = self._build(batch_size, failed)
        # The satellite invariants: counts partition the batch, success
        # indices strictly increase, failures sorted by index.
        assert outcome.num_ok + outcome.num_failed == outcome.batch_size
        indices = list(outcome.indices)
        assert indices == sorted(set(indices))
        failure_indices = [f.index for f in outcome.failures]
        assert failure_indices == sorted(set(failure_indices))
        assert set(indices) | set(failure_indices) == set(range(batch_size))
        # Derived views agree with the partition.
        mask = outcome.ok_mask()
        assert mask.sum() == outcome.num_ok
        assert all(not mask[i] for i in failure_indices)
        scattered = outcome.scatter(fill_value=-1.0)
        assert scattered.shape == (batch_size, 3)
        for i in failure_indices:
            assert np.all(scattered[i] == -1.0)
            assert outcome.failure_for(i) is not None
        for i in indices:
            assert np.all(scattered[i] == 0.0)
            assert outcome.failure_for(i) is None

    @given(st.integers(2, 16), st.data())
    @settings(max_examples=40, deadline=None)
    def test_unsorted_success_indices_rejected(self, batch_size, data):
        import dataclasses

        from repro.errors import ShapeError

        outcome = self._build(batch_size, [])
        swap = data.draw(st.integers(0, batch_size - 2))
        indices = np.asarray(outcome.indices).copy()
        indices[[swap, swap + 1]] = indices[[swap + 1, swap]]
        with pytest.raises(ShapeError):
            dataclasses.replace(outcome, indices=indices)

    @given(st.integers(1, 16))
    @settings(max_examples=20, deadline=None)
    def test_overlapping_partition_rejected(self, batch_size):
        import dataclasses

        from repro.core.engine import BatchItemFailure
        from repro.errors import ShapeError

        outcome = self._build(batch_size, [])
        # Claim position 0 failed *as well as* succeeded: counts now
        # exceed the batch unless an index is dropped; both are invalid.
        duplicate = BatchItemFailure(index=0, error="X", reason="dup")
        with pytest.raises(ShapeError):
            dataclasses.replace(outcome, failures=(duplicate,))
        with pytest.raises(ShapeError):
            dataclasses.replace(
                outcome,
                values=outcome.values[1:],
                indices=np.asarray(outcome.indices)[1:],
                failures=(
                    BatchItemFailure(index=batch_size, error="X", reason="oob"),
                ),
            )

    @given(st.integers(2, 16), st.data())
    @settings(max_examples=40, deadline=None)
    def test_unsorted_failures_rejected(self, batch_size, data):
        import dataclasses

        from repro.errors import ShapeError

        failed = data.draw(
            st.lists(
                st.integers(0, batch_size - 1), min_size=2, max_size=batch_size
            ).filter(lambda xs: len(set(xs)) >= 2)
        )
        outcome = self._build(batch_size, failed)
        reversed_failures = tuple(reversed(outcome.failures))
        with pytest.raises(ShapeError):
            dataclasses.replace(outcome, failures=reversed_failures)

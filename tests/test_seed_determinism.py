"""Seed-determinism contracts for every stochastic source.

Every attacker in :mod:`repro.security.attacks` and every physiological
generator must be a pure function of its seeds: identical seeds give
bitwise-identical output (reproducible benchmarks, resumable scenario
matrices), and different seeds / trial indices actually decorrelate
(an "attack corpus" of one repeated recording would be a fake).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Recorder, sample_population
from repro.config import SamplingConfig
from repro.errors import ConfigError
from repro.physio.heartbeat import CardiacProfile, HeartbeatGenerator
from repro.physio.voice import VoiceSource
from repro.security.attacks import (
    ImpersonationAttacker,
    ReplayAttacker,
    VibrationAwareAttacker,
    ZeroEffortAttacker,
)

SAMPLING = SamplingConfig(duration_s=3.6, utterance_s=0.45)


@pytest.fixture(scope="module")
def pair():
    people = sample_population(2, 1, seed=33)
    return people[0], people[1]


def _recorders():
    return Recorder(seed=4), Recorder(seed=4)


class TestAttackerDeterminism:
    def test_zero_effort_same_seed_bitwise(self, pair):
        attacker, _ = pair
        rec_a, rec_b = _recorders()
        a = ZeroEffortAttacker(rec_a).forge_recording(attacker, trial_index=3)
        b = ZeroEffortAttacker(rec_b).forge_recording(attacker, trial_index=3)
        np.testing.assert_array_equal(a, b)

    def test_zero_effort_trials_decorrelate(self, pair):
        attacker, _ = pair
        forger = ZeroEffortAttacker(Recorder(seed=4))
        a = forger.forge_recording(attacker, trial_index=0)
        b = forger.forge_recording(attacker, trial_index=1)
        assert not np.array_equal(a, b)

    def test_vibration_aware_same_seed_bitwise(self, pair):
        attacker, _ = pair
        rec_a, rec_b = _recorders()
        a = VibrationAwareAttacker(rec_a).forge_recording(
            attacker, trial_index=2
        )
        b = VibrationAwareAttacker(rec_b).forge_recording(
            attacker, trial_index=2
        )
        np.testing.assert_array_equal(a, b)

    def test_vibration_aware_trials_decorrelate(self, pair):
        attacker, _ = pair
        forger = VibrationAwareAttacker(Recorder(seed=4))
        assert not np.array_equal(
            forger.forge_recording(attacker, trial_index=0),
            forger.forge_recording(attacker, trial_index=1),
        )

    def test_impersonation_same_seed_bitwise(self, pair):
        attacker, victim = pair
        rec_a, rec_b = _recorders()
        a = ImpersonationAttacker(rec_a).forge_recording(
            attacker, victim, trial_index=5
        )
        b = ImpersonationAttacker(rec_b).forge_recording(
            attacker, victim, trial_index=5
        )
        np.testing.assert_array_equal(a, b)

    def test_impersonation_direction_matters(self, pair):
        """A>B and B>A mimicry must not share a random stream."""
        attacker, victim = pair
        forger = ImpersonationAttacker(Recorder(seed=4))
        forward = forger.forge_recording(attacker, victim, trial_index=0)
        reverse = forger.forge_recording(victim, attacker, trial_index=0)
        assert not np.array_equal(forward, reverse)

    def test_mimic_profile_keeps_attacker_anatomy(self, pair):
        attacker, victim = pair
        forger = ImpersonationAttacker(Recorder(seed=4))
        mimic = forger.mimic_profile(
            attacker, victim, np.random.default_rng(0)
        )
        assert mimic.person_id == attacker.person_id
        assert mimic.natural_frequency_hz == attacker.natural_frequency_hz
        assert mimic.harmonic_tilt == victim.harmonic_tilt

    def test_replay_store_is_exact(self, pair):
        attacker, _ = pair
        replay = ReplayAttacker()
        template = np.random.default_rng(9).normal(size=64)
        replay.steal(attacker.person_id, template)
        np.testing.assert_array_equal(
            replay.stolen_template(attacker.person_id), template
        )
        assert replay.has_stolen(attacker.person_id)
        with pytest.raises(ConfigError):
            replay.stolen_template("never-stolen")


class TestPhysioDeterminism:
    def test_voice_source_same_rng_bitwise(self, pair):
        person, _ = pair
        voice = VoiceSource(person)
        a = voice.synthesize(0.6, 2800.0, np.random.default_rng(11))
        b = voice.synthesize(0.6, 2800.0, np.random.default_rng(11))
        np.testing.assert_array_equal(a, b)
        c = voice.synthesize(0.6, 2800.0, np.random.default_rng(12))
        assert not np.array_equal(a, c)

    def test_heartbeat_generator_same_rng_bitwise(self, pair):
        person, other = pair
        gen = HeartbeatGenerator()
        a = gen.synthesize(person, None, 700, 350.0, np.random.default_rng(7))
        b = gen.synthesize(person, None, 700, 350.0, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
        c = gen.synthesize(person, None, 700, 350.0, np.random.default_rng(8))
        assert not np.array_equal(a, c)
        d = gen.synthesize(other, None, 700, 350.0, np.random.default_rng(7))
        assert not np.array_equal(a, d)

    def test_cardiac_profile_is_seedless_and_stable(self, pair):
        person, _ = pair
        a = CardiacProfile.from_person(person)
        b = CardiacProfile.from_person(person)
        assert a.rest_rate_bpm == b.rest_rate_bpm
        np.testing.assert_array_equal(a.coupling, b.coupling)

    def test_heartbeat_recorder_same_seed_bitwise(self, pair):
        person, _ = pair
        a = Recorder(sampling=SAMPLING, seed=6, heartbeat=True)
        b = Recorder(sampling=SAMPLING, seed=6, heartbeat=True)
        np.testing.assert_array_equal(
            a.record(person, trial_index=1), b.record(person, trial_index=1)
        )

    def test_heartbeat_recorder_seeds_decorrelate(self, pair):
        person, _ = pair
        a = Recorder(sampling=SAMPLING, seed=6, heartbeat=True)
        c = Recorder(sampling=SAMPLING, seed=7, heartbeat=True)
        assert not np.array_equal(
            a.record(person, trial_index=1), c.record(person, trial_index=1)
        )
        assert not np.array_equal(
            a.record(person, trial_index=1), a.record(person, trial_index=2)
        )

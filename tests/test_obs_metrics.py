"""Unit and property tests for the observability subsystem.

Covers the instrument semantics (counters, gauges, fixed-bucket
histograms), the registry's get-or-create identity, the process-wide
enable/disable runtime, the span timer, and the two invariants the
exporters must uphold: histogram bucket counts always account for every
observation, and a snapshot is serialization-stable (same state, same
bytes).
"""

from __future__ import annotations

import json
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.runtime import STAGE_LATENCY

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", route="verify")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("enrolled_users")
        gauge.set(10)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 8.0

    def test_histogram_buckets(self):
        h = Histogram("lat", (), buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 2.0):
            h.observe(value)
        # bisect_left: 0.05 and 0.1 land in the <=0.1 bucket (bound
        # inclusive, Prometheus convention), 0.5 in <=1.0, 2.0 in +Inf.
        assert h.bucket_counts == [2, 1, 1]
        assert h.cumulative() == [(0.1, 2), (1.0, 3), (float("inf"), 4)]
        assert h.count == 4
        assert h.sum == pytest.approx(2.65)

    def test_histogram_validates_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", (), buckets=())
        with pytest.raises(ValueError):
            Histogram("x", (), buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", (), buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", cache="eval", dtype="float32")
        b = registry.counter("hits", dtype="float32", cache="eval")
        assert a is b

    def test_distinct_labels_distinct_series(self):
        registry = MetricsRegistry()
        assert registry.counter("hits", k="1") is not registry.counter("hits", k="2")

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.histogram("c").observe(0.1)
        registry.reset()
        snapshot = registry.to_dict()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_null_registry_is_inert(self):
        registry = NullRegistry()
        assert registry.enabled is False
        registry.counter("a", k="v").inc()
        registry.gauge("b").set(5)
        registry.histogram("c").observe(1.0)
        assert registry.to_dict() == {"counters": {}, "gauges": {}, "histograms": {}}
        # The null instruments are shared singletons: no per-call garbage.
        assert registry.counter("a") is registry.histogram("z")

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("failures_total", error="OnsetNotFoundError").inc(3)
        registry.gauge("enrolled_users").set(2)
        registry.histogram("lat", buckets=(0.5,), stage="onset").observe(0.1)
        text = registry.to_prometheus()
        assert '# TYPE failures_total counter\n' in text
        assert 'failures_total{error="OnsetNotFoundError"} 3\n' in text
        assert "enrolled_users 2\n" in text
        assert 'lat_bucket{stage="onset",le="0.5"} 1\n' in text
        assert 'lat_bucket{stage="onset",le="+Inf"} 1\n' in text
        assert 'lat_count{stage="onset"} 1\n' in text


class TestRuntime:
    def test_default_is_noop(self):
        assert obs.get_registry().enabled is False

    def test_enable_disable_roundtrip(self):
        try:
            live = obs.enable()
            assert live.enabled and obs.get_registry() is live
            assert obs.enable() is live  # idempotent
        finally:
            obs.disable()
        assert obs.get_registry().enabled is False

    def test_collecting_restores_previous(self):
        before = obs.get_registry()
        with obs.collecting() as registry:
            assert obs.get_registry() is registry
            obs.inc("inside")
        assert obs.get_registry() is before
        assert registry.counter("inside").value == 1.0

    def test_helpers_are_noop_when_disabled(self):
        obs.inc("never")
        obs.observe("never", 1.0)
        obs.set_gauge("never", 1.0)
        with obs.collecting() as registry:
            pass
        assert registry.to_dict()["counters"] == {}

    def test_span_records_latency(self):
        with obs.collecting() as registry:
            with obs.span("teststage"):
                time.sleep(0.002)
        h = registry.histogram(STAGE_LATENCY, stage="teststage")
        assert h.count == 1
        assert 0.001 < h.sum < 1.0

    def test_span_decorator_sees_late_enable(self):
        @obs.span("decorated")
        def work():
            return 41 + 1

        assert work() == 42  # disabled: no recording, value passes through
        with obs.collecting() as registry:
            assert work() == 42
        assert registry.histogram(STAGE_LATENCY, stage="decorated").count == 1

    def test_span_noop_when_disabled(self):
        with obs.span("quiet"):
            pass
        with obs.collecting() as registry:
            pass
        assert registry.to_dict()["histograms"] == {}


class TestMetricsProperties:
    """The satellite invariants, property-tested."""

    @given(st.lists(finite, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_histogram_accounts_for_every_observation(self, values):
        h = Histogram("lat", (), buckets=DEFAULT_LATENCY_BUCKETS)
        for value in values:
            h.observe(value)
        assert h.count == len(values)
        assert sum(h.bucket_counts) == len(values)
        cumulative = h.cumulative()
        counts = [c for _, c in cumulative]
        assert counts == sorted(counts)  # cumulative counts are monotone
        assert cumulative[-1][1] == len(values)  # +Inf catches everything
        assert h.sum == pytest.approx(sum(float(v) for v in values), rel=1e-9)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["alpha_total", "beta_total"]),
                st.sampled_from(["", "x", "y"]),
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            ),
            max_size=50,
        ),
        st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_snapshot_is_serialization_stable(self, counter_ops, observations):
        registry = MetricsRegistry()
        for name, label, amount in counter_ops:
            labels = {"k": label} if label else {}
            registry.counter(name, **labels).inc(amount)
        for value in observations:
            registry.histogram("lat", stage="s").observe(value)
        first_json = registry.to_json()
        first_text = registry.to_prometheus()
        # Reading a snapshot must not perturb state: byte-identical again.
        assert registry.to_json() == first_json
        assert registry.to_prometheus() == first_text
        # And the JSON round-trips to exactly the to_dict() structure.
        assert json.loads(first_json) == registry.to_dict()

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_prometheus_bucket_lines_match_histogram(self, values):
        registry = MetricsRegistry()
        for value in values:
            registry.histogram("lat", buckets=(1.0, 10.0), stage="s").observe(value)
        if not values:
            return
        text = registry.to_prometheus()
        count_line = [l for l in text.splitlines() if l.startswith("lat_count")]
        assert count_line == [f'lat_count{{stage="s"}} {len(values)}']
        inf_line = [l for l in text.splitlines() if 'le="+Inf"' in l]
        assert inf_line == [f'lat_bucket{{stage="s",le="+Inf"}} {len(values)}']


class TestMergeSnapshots:
    """Cross-process snapshot folding behind the worker-pool metrics."""

    @staticmethod
    def _registry_with(counter: float, gauge: float, values: list) -> dict:
        registry = MetricsRegistry()
        registry.counter("reqs", kind="verify").inc(counter)
        registry.gauge("gen").set(gauge)
        for value in values:
            registry.histogram("lat", buckets=(1.0, 10.0), stage="s").observe(
                value
            )
        return registry.to_dict()

    def test_counters_add_gauges_max_histograms_fold(self):
        from repro.obs.metrics import merge_snapshots

        a = self._registry_with(3.0, 2.0, [0.5, 5.0])
        b = self._registry_with(4.0, 7.0, [20.0])
        merged = merge_snapshots([a, b])
        assert merged["counters"]['reqs{kind="verify"}'] == 7.0
        assert merged["gauges"]["gen"] == 7.0
        hist = merged["histograms"]['lat{stage="s"}']
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(25.5)
        # Positional bucket fold: same layout, counts added per bound.
        assert [count for _, count in hist["buckets"]] == [1, 2, 3]

    def test_merge_is_idempotent_in_the_snapshot_set(self):
        from repro.obs.metrics import merge_snapshots

        a = self._registry_with(3.0, 2.0, [0.5])
        b = self._registry_with(4.0, 7.0, [])
        assert merge_snapshots([a, b]) == merge_snapshots([a, b])
        # Re-delivering the *same* snapshot must go through the
        # latest-per-key store (WorkerMetricsAggregator), not here:
        # merging is by-value, so the caller deduplicates by identity.

    def test_empty_and_none_snapshots_are_ignored(self):
        from repro.obs.metrics import merge_snapshots

        a = self._registry_with(1.0, 1.0, [])
        merged = merge_snapshots([{}, a])
        assert merged["counters"] == a["counters"]

    def test_bucket_layout_mismatch_raises(self):
        from repro.obs.metrics import merge_snapshots

        a = self._registry_with(1.0, 1.0, [0.5])
        b = {
            "counters": {},
            "gauges": {},
            "histograms": {
                'lat{stage="s"}': {
                    "buckets": [[2.0, 1], [float("inf"), 1]],
                    "sum": 0.5,
                    "count": 1,
                }
            },
        }
        with pytest.raises(ValueError, match="bucket layout"):
            merge_snapshots([a, b])

"""Score normalisation, evaluation curves and report rendering.

Covers the three previously untested ``repro.eval`` modules:

* ``scorenorm`` — Z-/T-norm statistics, matrix/scalar agreement and the
  s-norm identity over pair distances;
* ``curves`` — DET monotonicity, exact Mann-Whitney AUC (ties,
  symmetry, perfect separation) and both bootstrap EER intervals;
* ``reporting`` — fixed-width table/series rendering round-trips.

Plus the FAR/FRR threshold-monotonicity contract the EER solver and the
DET transform both lean on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.similarity import pairwise_cosine_distance
from repro.errors import ConfigError, ShapeError
from repro.eval.curves import (
    BootstrapCI,
    bootstrap_eer_ci,
    det_curve,
    roc_auc,
    subject_bootstrap_eer_ci,
)
from repro.eval.metrics import equal_error_rate, far_frr_curve
from repro.eval.reporting import render_series, render_table
from repro.eval.scorenorm import TNorm, ZNorm, normalized_pair_distances


@pytest.fixture(scope="module")
def separated_scores():
    """Well-separated genuine/impostor distance samples."""
    rng = np.random.default_rng(7)
    genuine = np.clip(rng.normal(0.35, 0.06, size=400), 0.0, 2.0)
    impostor = np.clip(rng.normal(0.95, 0.08, size=900), 0.0, 2.0)
    return genuine, impostor


@pytest.fixture(scope="module")
def clustered_embeddings():
    """(embeddings, labels): 6 subjects, 8 well-clustered trials each."""
    rng = np.random.default_rng(3)
    centers = rng.normal(size=(6, 32)) * 4.0
    embeddings = np.concatenate(
        [center + rng.normal(scale=0.3, size=(8, 32)) for center in centers]
    )
    labels = np.repeat(np.arange(6), 8)
    return embeddings, labels


# -- score normalisation ---------------------------------------------------


class TestZNorm:
    def test_rejects_degenerate_cohort(self):
        with pytest.raises(ShapeError):
            ZNorm(np.ones((1, 8)))
        with pytest.raises(ShapeError):
            ZNorm(np.ones(8))

    def test_statistics_match_manual_cohort_distances(self, rng):
        cohort = rng.normal(size=(20, 16))
        template = rng.normal(size=16)
        mean, std = ZNorm(cohort).statistics(template)
        manual = pairwise_cosine_distance(template.reshape(1, -1), cohort)[0]
        assert mean == pytest.approx(manual.mean())
        assert std == pytest.approx(manual.std())

    def test_normalize_standardises(self, rng):
        cohort = rng.normal(size=(20, 16))
        template = rng.normal(size=16)
        znorm = ZNorm(cohort)
        mean, std = znorm.statistics(template)
        assert znorm.normalize(mean, template) == pytest.approx(0.0)
        assert znorm.normalize(mean + std, template) == pytest.approx(1.0)

    def test_matrix_agrees_with_scalar_path(self, rng):
        cohort = rng.normal(size=(12, 16))
        templates = rng.normal(size=(5, 16))
        probes = rng.normal(size=(7, 16))
        distances = pairwise_cosine_distance(probes, templates)
        znorm = ZNorm(cohort)
        matrix = znorm.normalize_matrix(distances, templates)
        for t in range(templates.shape[0]):
            for p in range(probes.shape[0]):
                assert matrix[p, t] == pytest.approx(
                    znorm.normalize(distances[p, t], templates[t])
                )

    def test_matrix_shape_validation(self, rng):
        znorm = ZNorm(rng.normal(size=(4, 8)))
        with pytest.raises(ShapeError):
            znorm.normalize_matrix(np.zeros((3, 5)), np.zeros((4, 8)))


class TestTNorm:
    def test_rejects_degenerate_cohort(self):
        with pytest.raises(ShapeError):
            TNorm(np.ones((1, 8)))

    def test_matrix_agrees_with_scalar_path(self, rng):
        cohort = rng.normal(size=(12, 16))
        templates = rng.normal(size=(5, 16))
        probes = rng.normal(size=(7, 16))
        distances = pairwise_cosine_distance(probes, templates)
        tnorm = TNorm(cohort)
        matrix = tnorm.normalize_matrix(distances, probes)
        for p in range(probes.shape[0]):
            for t in range(templates.shape[0]):
                assert matrix[p, t] == pytest.approx(
                    tnorm.normalize(distances[p, t], probes[p])
                )

    def test_matrix_shape_validation(self, rng):
        tnorm = TNorm(rng.normal(size=(4, 8)))
        with pytest.raises(ShapeError):
            tnorm.normalize_matrix(np.zeros((3, 5)), np.zeros((4, 8)))


class TestNormalizedPairDistances:
    def test_rejects_unknown_method(self, clustered_embeddings, rng):
        embeddings, labels = clustered_embeddings
        with pytest.raises(ConfigError):
            normalized_pair_distances(
                embeddings, labels, rng.normal(size=(10, 32)), method="q-norm"
            )

    def test_rejects_mismatched_labels(self, rng):
        with pytest.raises(ShapeError):
            normalized_pair_distances(
                rng.normal(size=(8, 16)),
                np.zeros(5),
                rng.normal(size=(10, 16)),
            )

    def test_single_class_has_no_impostor_pairs(self, rng):
        with pytest.raises(ShapeError):
            normalized_pair_distances(
                rng.normal(size=(6, 16)),
                np.zeros(6),
                rng.normal(size=(10, 16)),
            )

    def test_snorm_is_mean_of_znorm_and_tnorm(self, clustered_embeddings, rng):
        embeddings, labels = clustered_embeddings
        cohort = rng.normal(size=(15, 32))
        by_method = {
            method: normalized_pair_distances(
                embeddings, labels, cohort, method=method
            )
            for method in ("z-norm", "t-norm", "s-norm")
        }
        for part in (0, 1):  # genuine, impostor
            expected = 0.5 * (
                by_method["z-norm"][part] + by_method["t-norm"][part]
            )
            assert np.allclose(by_method["s-norm"][part], expected)

    def test_normalisation_preserves_separation(self, clustered_embeddings, rng):
        embeddings, labels = clustered_embeddings
        cohort = rng.normal(size=(15, 32)) * 4.0
        genuine, impostor = normalized_pair_distances(
            embeddings, labels, cohort, method="s-norm"
        )
        assert genuine.mean() < impostor.mean()
        eer = equal_error_rate(genuine, impostor).eer
        assert eer < 0.1  # clusters this tight stay separable post-norm


# -- curves ----------------------------------------------------------------


class TestFarFrrMonotonicity:
    def test_rates_are_monotone_in_threshold(self, separated_scores):
        genuine, impostor = separated_scores
        thresholds, far, frr = far_frr_curve(genuine, impostor)
        assert np.all(np.diff(thresholds) >= 0)
        # Raising the accept threshold can only admit more impostors
        # (FAR nondecreasing) and refuse fewer genuines (FRR
        # nonincreasing) — the contract the EER bisection relies on.
        assert np.all(np.diff(far) >= 0)
        assert np.all(np.diff(frr) <= 0)

    def test_eer_sits_where_the_rates_cross(self, separated_scores):
        genuine, impostor = separated_scores
        result = equal_error_rate(genuine, impostor)
        assert 0.0 <= result.eer <= 1.0
        assert result.far_at_threshold == pytest.approx(
            result.frr_at_threshold, abs=0.02
        )
        assert result.eer == pytest.approx(
            0.5 * (result.far_at_threshold + result.frr_at_threshold),
            abs=1e-12,
        )


class TestDetCurve:
    def test_deviates_are_finite_and_monotone(self, separated_scores):
        genuine, impostor = separated_scores
        far_dev, frr_dev = det_curve(genuine, impostor, num_points=128)
        assert far_dev.shape == frr_dev.shape == (128,)
        assert np.isfinite(far_dev).all() and np.isfinite(frr_dev).all()
        # The probit is strictly increasing, so monotone rates stay
        # monotone in normal-deviate coordinates.
        assert np.all(np.diff(far_dev) >= 0)
        assert np.all(np.diff(frr_dev) <= 0)


class TestRocAuc:
    def test_perfect_separation_is_one(self):
        assert roc_auc([0.1, 0.2, 0.3], [0.5, 0.6, 0.7]) == pytest.approx(1.0)

    def test_total_confusion_is_zero(self):
        assert roc_auc([0.9, 0.8], [0.1, 0.2]) == pytest.approx(0.0)

    def test_all_tied_is_chance(self):
        assert roc_auc([0.5, 0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.5)

    def test_swapping_roles_complements(self, separated_scores):
        genuine, impostor = separated_scores
        forward = roc_auc(genuine, impostor)
        assert forward > 0.95
        assert forward + roc_auc(impostor, genuine) == pytest.approx(1.0)

    def test_empty_input_rejected(self):
        with pytest.raises(ShapeError):
            roc_auc([], [0.5])


class TestBootstrapEerCi:
    def test_parameter_validation(self, separated_scores):
        genuine, impostor = separated_scores
        with pytest.raises(ConfigError):
            bootstrap_eer_ci(genuine, impostor, confidence=1.0)
        with pytest.raises(ConfigError):
            bootstrap_eer_ci(genuine, impostor, num_resamples=5)

    def test_interval_is_seeded_and_ordered(self, rng):
        # Overlapping distributions so resampled EERs actually vary;
        # fully separable scores would pin every resample at zero.
        genuine = rng.normal(0.5, 0.15, size=300)
        impostor = rng.normal(0.8, 0.15, size=600)
        first = bootstrap_eer_ci(genuine, impostor, num_resamples=50, seed=1)
        second = bootstrap_eer_ci(genuine, impostor, num_resamples=50, seed=1)
        assert isinstance(first, BootstrapCI)
        assert first == second  # frozen dataclass, deterministic rng
        assert 0.0 <= first.lower <= first.upper <= 1.0
        assert first.point == equal_error_rate(genuine, impostor).eer
        other_seed = bootstrap_eer_ci(
            genuine, impostor, num_resamples=50, seed=2
        )
        assert (first.lower, first.upper) != (
            other_seed.lower,
            other_seed.upper,
        )


class TestSubjectBootstrapEerCi:
    def test_needs_three_subjects(self, rng):
        embeddings = rng.normal(size=(8, 16))
        with pytest.raises(ShapeError):
            subject_bootstrap_eer_ci(
                embeddings, np.repeat([0, 1], 4), num_resamples=20
            )

    def test_interval_on_clustered_subjects(self, clustered_embeddings):
        embeddings, labels = clustered_embeddings
        ci = subject_bootstrap_eer_ci(
            embeddings, labels, num_resamples=30, seed=4
        )
        assert 0.0 <= ci.lower <= ci.upper <= 1.0
        assert ci.confidence == 0.95
        repeat = subject_bootstrap_eer_ci(
            embeddings, labels, num_resamples=30, seed=4
        )
        assert ci == repeat


# -- reporting -------------------------------------------------------------


class TestRenderTable:
    def test_round_trips_cells_through_the_rendering(self):
        headers = ["stage", "ms", "note"]
        rows = [["onset", 1.25, "ok"], ["filter", 0.5, "vectorised"]]
        text = render_table(headers, rows, title="latency")
        lines = text.splitlines()
        assert lines[0] == "latency"
        parsed = [
            [cell.strip() for cell in line.split(" | ")] for line in lines[3:]
        ]
        assert parsed == [["onset", "1.25", "ok"], ["filter", "0.5", "vectorised"]]
        # Every row (and the rule) is padded to the same width.
        assert len({len(line) for line in lines[1:]}) == 1

    def test_float_cells_use_four_significant_digits(self):
        text = render_table(["x"], [[3.14159265]])
        assert "3.142" in text

    def test_validation(self):
        with pytest.raises(ShapeError):
            render_table([], [])
        with pytest.raises(ShapeError):
            render_table(["a", "b"], [["only-one"]])


class TestRenderSeries:
    def test_round_trips_aligned_values(self):
        text = render_series(
            "frr vs users", [10, 20], [0.01, 0.0234], x_label="users",
            y_label="frr",
        )
        name, x_row, y_row = text.splitlines()
        assert name == "frr vs users"
        assert x_row.split(" | ")[1].split() == ["10", "20"]
        assert y_row.split(" | ")[1].split() == ["0.01", "0.0234"]
        assert x_row.index("|") == y_row.index("|")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            render_series("s", [1, 2], [1.0])

"""Recording-condition tests (Sections VII-B/C/D/F)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.physio.conditions import (
    NOMINAL,
    RecordingCondition,
    coupling_gain,
    mirror_matrix,
    motion_noise,
    perturb_person,
    rotation_matrix,
    sensor_frame_transform,
)
from repro.types import Activity, EarSide, Mouthful, Tone


class TestRecordingCondition:
    def test_nominal_describe(self):
        assert NOMINAL.describe() == "baseline"

    def test_describe_lists_deviations(self):
        cond = RecordingCondition(
            activity=Activity.RUN,
            mouthful=Mouthful.WATER,
            tone=Tone.HIGH,
            ear_side=EarSide.LEFT,
            orientation_deg=90.0,
            days_elapsed=14.0,
        )
        desc = cond.describe()
        for token in ("run", "water", "high-tone", "left-ear", "90deg", "+14d"):
            assert token in desc

    def test_rejects_negative_days(self):
        with pytest.raises(ConfigError):
            RecordingCondition(days_elapsed=-1.0)


class TestPerturbPerson:
    def test_nominal_is_identity(self, population, rng):
        person = population[0]
        assert perturb_person(person, NOMINAL, rng) is person

    def test_lollipop_increases_mass_and_damping(self, population, rng):
        person = population[0]
        out = perturb_person(
            person, RecordingCondition(mouthful=Mouthful.LOLLIPOP), rng
        )
        assert out.mass > person.mass
        assert out.c1 > person.c1

    def test_water_perturbation_is_small(self, population, rng):
        person = population[0]
        out = perturb_person(person, RecordingCondition(mouthful=Mouthful.WATER), rng)
        assert abs(out.mass / person.mass - 1.0) < 0.05

    def test_days_elapsed_applies_drift(self, population, rng):
        person = population[0]
        out = perturb_person(person, RecordingCondition(days_elapsed=14.0), rng)
        assert out.c1 != person.c1


class TestFrames:
    def test_rotation_preserves_x_axis(self):
        rot = rotation_matrix(90.0)
        np.testing.assert_allclose(rot @ [1, 0, 0], [1, 0, 0], atol=1e-12)

    def test_rotation_is_orthonormal(self):
        rot = rotation_matrix(37.0)
        np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-12)

    def test_360_is_identity(self):
        np.testing.assert_allclose(rotation_matrix(360.0), np.eye(3), atol=1e-12)

    def test_mirror_flips_y(self):
        np.testing.assert_allclose(mirror_matrix() @ [0, 1, 0], [0, -1, 0])

    def test_sensor_frame_combines_both(self):
        cond = RecordingCondition(ear_side=EarSide.LEFT, orientation_deg=90.0)
        combined = sensor_frame_transform(cond)
        expected = rotation_matrix(90.0) @ mirror_matrix()
        np.testing.assert_allclose(combined, expected)

    def test_left_ear_couples_less(self, population):
        person = population[0]
        cond = RecordingCondition(ear_side=EarSide.LEFT)
        assert coupling_gain(person, cond) == person.left_right_asymmetry
        assert coupling_gain(person, NOMINAL) == 1.0


class TestMotionNoise:
    def test_static_is_silent(self, rng):
        noise = motion_noise(NOMINAL, 100, 350.0, rng)
        assert np.all(noise == 0.0)

    def test_run_is_stronger_than_walk(self, rng):
        walk = motion_noise(
            RecordingCondition(activity=Activity.WALK), 700, 350.0,
            np.random.default_rng(0),
        )
        run = motion_noise(
            RecordingCondition(activity=Activity.RUN), 700, 350.0,
            np.random.default_rng(0),
        )
        assert run.std() > walk.std()

    def test_energy_below_highpass_cutoff(self, rng):
        """Body motion lives below ~12 Hz; the 20 Hz high-pass removes it."""
        noise = motion_noise(
            RecordingCondition(activity=Activity.RUN), 3500, 350.0, rng
        )
        spectrum = np.abs(np.fft.rfft(noise[:, 2])) ** 2
        freqs = np.fft.rfftfreq(3500, 1 / 350.0)
        low = spectrum[(freqs > 0) & (freqs < 15)].sum()
        high = spectrum[freqs >= 20].sum()
        assert low > 5 * high

    def test_shape(self, rng):
        cond = RecordingCondition(activity=Activity.WALK)
        assert motion_noise(cond, 42, 350.0, rng).shape == (42, 3)

    def test_rejects_negative_samples(self, rng):
        with pytest.raises(ConfigError):
            motion_noise(NOMINAL, -1, 350.0, rng)

"""Loss, optimiser, data-loading and serialization tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, SerializationError, ShapeError
from repro.nn import (
    Adam,
    ArrayDataset,
    CrossEntropyLoss,
    DataLoader,
    Linear,
    MSELoss,
    SGD,
    load_state_dict,
    save_state_dict,
)
from repro.nn.gradcheck import numerical_gradient
from repro.nn.serialize import state_dict_nbytes
from repro.nn.tensor import Parameter


class TestCrossEntropy:
    def test_uniform_logits_log_k(self):
        loss = CrossEntropyLoss()
        value = loss(np.zeros((4, 10)), np.arange(4))
        assert value == pytest.approx(np.log(10.0))

    def test_perfect_prediction_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        assert loss(logits, np.array([1, 2])) < 1e-6

    def test_gradient_matches_numerical(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(3, 5))
        labels = np.array([0, 3, 2])
        loss(logits, labels)
        analytic = loss.backward()

        def f(lg):
            return CrossEntropyLoss()(lg, labels)

        numeric = numerical_gradient(f, logits.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_extreme_logits_stable(self):
        loss = CrossEntropyLoss()
        assert np.isfinite(loss(np.array([[1e4, -1e4]]), np.array([0])))

    def test_rejects_label_out_of_range(self):
        with pytest.raises(ShapeError):
            CrossEntropyLoss()(np.zeros((2, 3)), np.array([0, 3]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(ShapeError):
            CrossEntropyLoss().backward()


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        assert loss(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(2.5)

    def test_gradient(self, rng):
        loss = MSELoss()
        pred = rng.normal(size=(4,))
        target = rng.normal(size=(4,))
        loss(pred, target)
        np.testing.assert_allclose(
            loss.backward(), 2.0 * (pred - target) / 4.0
        )


class TestOptimizers:
    def _quadratic_param(self):
        return Parameter(np.array([5.0, -3.0]))

    def test_sgd_converges_on_quadratic(self):
        param = self._quadratic_param()
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            param.zero_grad()
            param.accumulate(2.0 * param.data)
            opt.step()
        assert np.abs(param.data).max() < 1e-3

    def test_sgd_momentum_faster_than_plain(self):
        plain = self._quadratic_param()
        mom = self._quadratic_param()
        opt_p = SGD([plain], lr=0.02)
        opt_m = SGD([mom], lr=0.02, momentum=0.9)
        for _ in range(50):
            for param, opt in ((plain, opt_p), (mom, opt_m)):
                param.zero_grad()
                param.accumulate(2.0 * param.data)
                opt.step()
        assert np.abs(mom.data).max() < np.abs(plain.data).max()

    def test_adam_converges_on_quadratic(self):
        param = self._quadratic_param()
        opt = Adam([param], lr=0.3)
        for _ in range(300):
            param.zero_grad()
            param.accumulate(2.0 * param.data)
            opt.step()
        assert np.abs(param.data).max() < 1e-3

    def test_weight_decay_shrinks_weights(self, rng):
        param = Parameter(np.ones(4))
        opt = SGD([param], lr=0.1, weight_decay=0.5)
        opt.step()  # zero gradient, only decay
        assert np.all(param.data < 1.0)

    def test_rejects_empty_parameters(self):
        with pytest.raises(ConfigError):
            SGD([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ConfigError):
            Adam([Parameter(np.zeros(1))], lr=0.0)


class TestDataLoader:
    def test_batches_cover_dataset(self, rng):
        ds = ArrayDataset(rng.normal(size=(10, 3)), np.arange(10) % 2)
        loader = DataLoader(ds, batch_size=4, shuffle=False)
        seen = sum(len(y) for _, y in loader)
        assert seen == 10
        assert len(loader) == 3

    def test_drop_last(self, rng):
        ds = ArrayDataset(rng.normal(size=(10, 3)), np.zeros(10))
        loader = DataLoader(ds, batch_size=4, drop_last=True)
        assert len(loader) == 2

    def test_shuffle_changes_order_across_epochs(self, rng):
        ds = ArrayDataset(np.arange(20)[:, None].astype(float), np.zeros(20))
        loader = DataLoader(ds, batch_size=20, shuffle=True, seed=0)
        first = next(iter(loader))[0].ravel()
        second = next(iter(loader))[0].ravel()
        assert not np.array_equal(first, second)

    def test_deterministic_given_seed(self, rng):
        ds = ArrayDataset(np.arange(20)[:, None].astype(float), np.zeros(20))
        a = next(iter(DataLoader(ds, batch_size=20, seed=5)))[0]
        b = next(iter(DataLoader(ds, batch_size=20, seed=5)))[0]
        np.testing.assert_array_equal(a, b)

    def test_dataset_length_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            ArrayDataset(rng.normal(size=(5, 2)), np.zeros(4))

    def test_num_classes(self):
        ds = ArrayDataset(np.zeros((4, 1)), np.array([0, 2, 1, 2]))
        assert ds.num_classes() == 3


class TestSerialize:
    def test_round_trip(self, tmp_path, rng):
        lin = Linear(4, 3, rng=rng)
        path = tmp_path / "model.npz"
        save_state_dict(lin.state_dict(), path)
        restored = load_state_dict(path)
        lin2 = Linear(4, 3, rng=np.random.default_rng(9))
        lin2.load_state(restored)
        x = rng.normal(size=(2, 4))
        np.testing.assert_array_equal(lin(x), lin2(x))

    def test_empty_state_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            save_state_dict({}, tmp_path / "x.npz")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_state_dict(tmp_path / "nope.npz")

    def test_nbytes_float32_accounting(self):
        state = {"w": np.zeros((10, 10)), "b": np.zeros(10)}
        assert state_dict_nbytes(state) == 110 * 4

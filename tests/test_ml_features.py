"""Statistical feature (SFS) tests (Section V-A)."""

import numpy as np
import pytest

from repro.ml.features import (
    FEATURE_NAMES,
    axis_statistics,
    statistical_features,
    statistical_features_batch,
)


class TestAxisStatistics:
    def test_six_features_in_order(self):
        segment = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        stats = axis_statistics(segment)
        assert stats.shape == (6,)
        assert stats[0] == pytest.approx(3.0)  # mean
        assert stats[1] == pytest.approx(3.0)  # median
        assert stats[2] == pytest.approx(2.0)  # variance
        assert stats[3] == pytest.approx(np.sqrt(2.0))  # std
        assert stats[4] == pytest.approx(4.0)  # upper quartile
        assert stats[5] == pytest.approx(2.0)  # lower quartile

    def test_names_documented(self):
        assert len(FEATURE_NAMES) == 6


class TestStatisticalFeatures:
    def test_36_features_per_signal_array(self, rng):
        sfs = statistical_features(rng.normal(size=(6, 60)))
        assert sfs.shape == (36,)

    def test_layout_is_axis_major(self, rng):
        array = rng.normal(size=(6, 60))
        sfs = statistical_features(array)
        np.testing.assert_allclose(sfs[:6], axis_statistics(array[0]))
        np.testing.assert_allclose(sfs[6:12], axis_statistics(array[1]))

    def test_batch(self, rng):
        arrays = rng.normal(size=(4, 6, 60))
        batch = statistical_features_batch(arrays)
        assert batch.shape == (4, 36)
        np.testing.assert_allclose(batch[2], statistical_features(arrays[2]))

    def test_batch_rejects_wrong_ndim(self, rng):
        with pytest.raises(ValueError):
            statistical_features_batch(rng.normal(size=(6, 60)))

    def test_batch_rejects_wrong_axis_count(self, rng):
        with pytest.raises(ValueError):
            statistical_features_batch(rng.normal(size=(4, 5, 60)))

    def test_deterministic(self, rng):
        arrays = rng.normal(size=(3, 6, 60))
        first = statistical_features_batch(arrays)
        second = statistical_features_batch(arrays.copy())
        np.testing.assert_array_equal(first, second)

    def test_batch_is_bitwise_equal_to_single(self, rng):
        # The cascade's stage-1 gate depends on the vectorized batch
        # path matching the per-item reference bit for bit.
        arrays = rng.normal(size=(8, 6, 105))
        batch = statistical_features_batch(arrays)
        for i, array in enumerate(arrays):
            np.testing.assert_array_equal(batch[i], statistical_features(array))

    def test_nan_stays_in_its_own_item(self, rng):
        arrays = rng.normal(size=(3, 6, 60))
        arrays[1, 2, 10] = np.nan
        batch = statistical_features_batch(arrays)
        assert np.isfinite(batch[0]).all()
        assert np.isnan(batch[1]).any()
        assert np.isfinite(batch[2]).all()

    def test_dead_axis_yields_finite_zero_features(self, rng):
        array = rng.normal(size=(6, 60))
        array[3] = 0.0  # sensor dropout: one axis flat
        sfs = statistical_features(array)
        assert np.isfinite(sfs).all()
        np.testing.assert_array_equal(sfs[18:24], np.zeros(6))

    def test_empty_batch(self):
        batch = statistical_features_batch(np.empty((0, 6, 60)))
        assert batch.shape == (0, 36)

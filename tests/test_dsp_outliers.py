"""MAD outlier detection and replacement tests (Section IV, Fig. 6)."""

import numpy as np
import pytest

from repro.dsp.outliers import mad, mad_outlier_mask, replace_outliers
from repro.errors import ConfigError, ShapeError


class TestMAD:
    def test_known_value(self):
        assert mad(np.array([1.0, 2.0, 3.0, 4.0, 5.0])) == 1.0

    def test_constant_is_zero(self):
        assert mad(np.full(10, 3.0)) == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            mad(np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            mad(np.zeros((3, 3)))


class TestOutlierMask:
    def test_detects_planted_spikes(self, rng):
        signal = rng.normal(0.0, 10.0, size=200)
        signal[[20, 77, 140]] += 500.0
        mask = mad_outlier_mask(signal)
        assert mask[20] and mask[77] and mask[140]
        assert mask.sum() <= 10

    def test_clean_gaussian_mostly_unflagged(self, rng):
        signal = rng.normal(0.0, 1.0, size=1000)
        assert mad_outlier_mask(signal).mean() < 0.01

    def test_constant_signal_flags_nothing(self):
        assert not mad_outlier_mask(np.full(50, 2.0)).any()

    def test_zero_mad_flags_deviants(self):
        signal = np.full(50, 2.0)
        signal[7] = 100.0
        mask = mad_outlier_mask(signal)
        assert mask[7]
        assert mask.sum() == 1

    def test_empty_input(self):
        assert mad_outlier_mask(np.array([])).shape == (0,)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigError):
            mad_outlier_mask(np.zeros(5), threshold=0.0)


class TestReplacement:
    def test_spike_replaced_with_neighbor_mean(self):
        signal = np.array([1.0, 2.0, 3.0, 500.0, 5.0, 6.0, 7.0])
        out = replace_outliers(signal)
        # Mean of two previous (2, 3) and two subsequent (5, 6) normals.
        assert out[3] == pytest.approx((2 + 3 + 5 + 6) / 4)

    def test_clean_signal_untouched(self, rng):
        signal = rng.normal(0.0, 1.0, size=100)
        mask = np.zeros(100, dtype=bool)
        out = replace_outliers(signal, mask=mask)
        np.testing.assert_array_equal(out, signal)

    def test_consecutive_outliers_use_nearest_normals(self):
        signal = np.array([1.0, 2.0, 900.0, 950.0, 5.0, 6.0])
        mask = np.array([False, False, True, True, False, False])
        out = replace_outliers(signal, mask=mask)
        assert out[2] == pytest.approx((1 + 2 + 5 + 6) / 4)
        assert out[3] == pytest.approx((1 + 2 + 5 + 6) / 4)

    def test_edge_outlier_uses_one_side(self):
        signal = np.array([900.0, 2.0, 3.0, 4.0, 5.0])
        mask = np.array([True, False, False, False, False])
        out = replace_outliers(signal, mask=mask)
        assert out[0] == pytest.approx((2 + 3) / 2)

    def test_all_outliers_returned_unchanged(self):
        signal = np.array([5.0, 6.0, 7.0])
        mask = np.ones(3, dtype=bool)
        np.testing.assert_array_equal(replace_outliers(signal, mask=mask), signal)

    def test_input_not_mutated(self):
        signal = np.array([1.0, 2.0, 3.0, 500.0, 5.0, 6.0, 7.0])
        original = signal.copy()
        replace_outliers(signal)
        np.testing.assert_array_equal(signal, original)

    def test_mask_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            replace_outliers(np.zeros(5), mask=np.zeros(4, dtype=bool))

    def test_rejects_bad_neighbors(self):
        with pytest.raises(ConfigError):
            replace_outliers(np.zeros(5), neighbors=0)

    def test_restores_clean_statistics(self, rng):
        """After replacement, the spiked signal's std is near the clean one."""
        clean = rng.normal(0.0, 10.0, size=500)
        spiked = clean.copy()
        spiked[rng.choice(500, 10, replace=False)] += 800.0
        restored = replace_outliers(spiked)
        assert abs(restored.std() - clean.std()) < 0.1 * clean.std()

"""Cross-module integration tests: the full MandiPass story."""

import numpy as np
import pytest

from repro import MandiPass, Recorder
from repro.config import MandiPassConfig, SecurityConfig
from repro.core.similarity import cosine_distance
from repro.physio import sample_population
from repro.physio.conditions import RecordingCondition
from repro.security import (
    ImpersonationAttacker,
    ReplayAttacker,
    VibrationAwareAttacker,
    ZeroEffortAttacker,
)
from repro.types import Activity, EarSide, Mouthful, Tone


@pytest.fixture(scope="module")
def deployed(trained_model, population):
    """A deployed device with three enrolled users."""
    config = MandiPassConfig(
        extractor=trained_model.config,
        security=SecurityConfig(
            template_dim=trained_model.config.embedding_dim,
            projected_dim=trained_model.config.embedding_dim,
            matrix_seed=42,
        ),
    )
    system = MandiPass(trained_model, config=config)
    recorder = Recorder(seed=11)
    users = {"u1": population[1], "u2": population[4], "u3": population[6]}
    for name, person in users.items():
        recordings = [recorder.record(person, trial_index=i) for i in range(6)]
        system.enroll(name, recordings)
    return system, users, recorder


class TestGenuineFlows:
    def test_all_users_verify(self, deployed):
        system, users, recorder = deployed
        for name, person in users.items():
            result = system.verify(name, recorder.record(person, trial_index=200))
            assert result.accepted, f"{name} falsely rejected (d={result.distance:.3f})"

    def test_cross_user_rejection(self, deployed):
        system, users, recorder = deployed
        probe = recorder.record(users["u2"], trial_index=300)
        assert not system.verify("u1", probe).accepted
        assert not system.verify("u3", probe).accepted

    def test_verification_under_conditions(self, deployed):
        """Lollipop / water / tone / orientation probes still verify for
        the enrolled user most of the time (Figs. 12-14)."""
        system, users, recorder = deployed
        person = users["u1"]
        conditions = [
            RecordingCondition(mouthful=Mouthful.LOLLIPOP),
            RecordingCondition(mouthful=Mouthful.WATER),
            RecordingCondition(tone=Tone.HIGH),
            RecordingCondition(tone=Tone.LOW),
            RecordingCondition(orientation_deg=90.0),
        ]
        # The session fixture trains a deliberately small extractor, so
        # assert the invariant that matters at this scale: condition
        # probes stay far below impostor-level distances (~1.0+); the
        # production-scale acceptance rates live in the benchmarks.
        accepted = 0
        for cond in conditions:
            distances = [
                system.verify(
                    "u1", recorder.record(person, cond, trial_index=idx)
                ).distance
                for idx in range(3)
            ]
            median = float(np.median(distances))
            accepted += int(median <= system.config.decision.threshold)
            assert median < 0.95, f"{cond.describe()}: {median:.3f}"
        assert accepted >= 2

    def test_walk_probe_stays_genuine_side(self, deployed):
        system, users, recorder = deployed
        cond = RecordingCondition(activity=Activity.WALK)
        distances = [
            system.verify(
                "u1", recorder.record(users["u1"], cond, trial_index=i)
            ).distance
            for i in range(5)
        ]
        # Far below the impostor level even when a single trial crosses
        # the small fixture model's operating threshold.
        assert float(np.median(distances)) < 0.7


class TestAttackFlows:
    def test_zero_effort_rejected(self, deployed, population):
        system, _, recorder = deployed
        attacker = ZeroEffortAttacker(recorder)
        for idx in range(3):
            forged = attacker.forge_recording(population[7], trial_index=idx)
            assert not system.verify("u1", forged).accepted

    def test_vibration_aware_rejected(self, deployed, population):
        system, _, recorder = deployed
        attacker = VibrationAwareAttacker(recorder)
        forged = attacker.forge_recording(population[7], trial_index=0)
        assert not system.verify("u1", forged).accepted

    def test_impersonation_mostly_rejected(self, deployed, population):
        """The small fixture model may let a rare mimicry attempt squeak
        by; the rate must stay near the impostor floor (the production
        rate is measured in benchmarks/test_security_assessment.py)."""
        system, users, recorder = deployed
        attacker = ImpersonationAttacker(recorder)
        accepted = 0
        for trial in range(6):
            forged = attacker.forge_recording(
                population[7], users["u1"], trial_index=trial
            )
            accepted += int(system.verify("u1", forged).accepted)
        assert accepted <= 1

    def test_replay_defeated_by_renewal(self, deployed):
        system, users, recorder = deployed
        replay = ReplayAttacker()
        replay.steal("u3", system.stored_template("u3"))
        # Before renewal the stolen vector passes (it IS the template).
        assert system.verify_presented("u3", replay.stolen_template("u3")).accepted
        # After renewal it no longer does.
        recordings = [recorder.record(users["u3"], trial_index=i) for i in range(6)]
        system.renew("u3", recordings)
        assert not system.verify_presented("u3", replay.stolen_template("u3")).accepted
        # But the genuine user still verifies.
        assert system.verify("u3", recorder.record(users["u3"], trial_index=50)).accepted


class TestStability:
    def test_left_ear_verification(self, deployed):
        """Left-ear probes stay on the genuine side for the small
        fixture model; the production-scale VSR (paper: 98.02 %) lives in
        benchmarks/test_device_earside.py."""
        system, users, recorder = deployed
        cond = RecordingCondition(ear_side=EarSide.LEFT)
        distances = [
            system.verify(
                "u1", recorder.record(users["u1"], cond, trial_index=i)
            ).distance
            for i in range(5)
        ]
        assert float(np.median(distances)) < 0.75

    def test_two_week_gap(self, deployed):
        system, users, recorder = deployed
        cond = RecordingCondition(days_elapsed=14.0)
        distances = [
            system.verify(
                "u2", recorder.record(users["u2"], cond, trial_index=i)
            ).distance
            for i in range(3)
        ]
        assert float(np.median(distances)) < 0.7

    def test_distance_reported_consistently(self, deployed):
        system, users, recorder = deployed
        probe = recorder.record(users["u1"], trial_index=400)
        r1 = system.verify("u1", probe)
        r2 = system.verify("u1", probe)
        assert r1.distance == pytest.approx(r2.distance)

"""Identification mode and template adaptation tests."""

import numpy as np
import pytest

from repro import MandiPass, Recorder
from repro.config import MandiPassConfig, SecurityConfig
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def multi_user_device(trained_model, population):
    config = MandiPassConfig(
        extractor=trained_model.config,
        security=SecurityConfig(
            template_dim=trained_model.config.embedding_dim,
            projected_dim=trained_model.config.embedding_dim,
            matrix_seed=31,
        ),
    )
    device = MandiPass(trained_model, config=config)
    recorder = Recorder(seed=23)
    users = {"ua": population[1], "ub": population[4], "uc": population[6]}
    for name, person in users.items():
        device.enroll(name, [recorder.record(person, trial_index=i) for i in range(5)])
    return device, users, recorder


class TestIdentify:
    def test_identifies_each_enrolled_user(self, multi_user_device):
        device, users, recorder = multi_user_device
        for name, person in users.items():
            best = device.identify(recorder.record(person, trial_index=77))
            assert best is not None
            assert best.user_id == name
            assert best.accepted

    def test_unknown_person_not_accepted(self, multi_user_device, population):
        device, _, recorder = multi_user_device
        stranger = population[7]
        hits = 0
        for trial in range(4):
            best = device.identify(recorder.record(stranger, trial_index=trial))
            assert best is not None
            hits += int(best.accepted)
        assert hits <= 1

    def test_silent_recording_returns_none(self, multi_user_device):
        device, _, _ = multi_user_device
        assert device.identify(np.zeros((210, 6))) is None

    def test_no_enrolled_users_returns_none(self, trained_model, recording):
        from repro.config import MandiPassConfig, SecurityConfig

        config = MandiPassConfig(
            extractor=trained_model.config,
            security=SecurityConfig(
                template_dim=trained_model.config.embedding_dim,
                projected_dim=trained_model.config.embedding_dim,
            ),
        )
        empty = MandiPass(trained_model, config=config)
        assert empty.identify(recording) is None


class TestAdaptTemplate:
    def test_accepted_probe_updates_template(self, multi_user_device):
        device, users, recorder = multi_user_device
        before = device.stored_template("ua").copy()
        updated = device.adapt_template(
            "ua", recorder.record(users["ua"], trial_index=88)
        )
        assert updated
        after = device.stored_template("ua")
        assert not np.array_equal(before, after)
        # Blending is conservative: the template moves, but not far.
        drift = np.linalg.norm(after - before) / np.linalg.norm(before)
        assert drift < 0.3

    def test_rejected_probe_never_adapts(self, multi_user_device, population):
        device, _, recorder = multi_user_device
        before = device.stored_template("ub").copy()
        updated = device.adapt_template(
            "ub", recorder.record(population[7], trial_index=1)
        )
        assert not updated
        np.testing.assert_array_equal(before, device.stored_template("ub"))

    def test_silent_probe_never_adapts(self, multi_user_device):
        device, _, _ = multi_user_device
        before = device.stored_template("uc").copy()
        assert not device.adapt_template("uc", np.zeros((210, 6)))
        np.testing.assert_array_equal(before, device.stored_template("uc"))

    def test_adaptation_keeps_user_verifiable(self, multi_user_device):
        device, users, recorder = multi_user_device
        for trial in range(90, 95):
            device.adapt_template("ua", recorder.record(users["ua"], trial_index=trial))
        result = device.verify("ua", recorder.record(users["ua"], trial_index=99))
        assert result.accepted

    def test_rejects_bad_rate(self, multi_user_device):
        device, users, recorder = multi_user_device
        with pytest.raises(ConfigError):
            device.adapt_template(
                "ua", recorder.record(users["ua"], trial_index=0), rate=1.5
            )

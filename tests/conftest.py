"""Shared fixtures.

Expensive artefacts (populations, recordings, a trained extractor) are
session-scoped so the suite stays fast; tests must not mutate them.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro import (
    DatasetSpec,
    MandiPass,
    Recorder,
    TrainingConfig,
    generate_dataset,
    sample_population,
    train_extractor,
)
from repro.config import ExtractorConfig
from repro.datasets.standard import hired_spec, user_spec

# Hypothesis profiles: property suites must never flake in CI.  The
# "ci" profile (selected whenever a CI env var is set) disables the
# per-example deadline — shared runners stall unpredictably under
# load — and derandomizes so a red run is reproducible from the log
# alone.  Local runs keep random exploration but drop the deadline
# too: the heavy DSP examples routinely exceed the 200 ms default.
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=(HealthCheck.too_slow,),
)
settings.register_profile("local", deadline=None)
settings.load_profile("ci" if os.environ.get("CI") else "local")


@pytest.fixture(scope="session")
def population():
    """Eight standard people (two female), deterministic."""
    return sample_population(8, 2, seed=0)


@pytest.fixture(scope="session")
def recorder():
    return Recorder(seed=0)


@pytest.fixture(scope="session")
def recording(population, recorder):
    """One nominal raw recording of person 1 (decent axis coupling)."""
    return recorder.record(population[1])


@pytest.fixture(scope="session")
def small_extractor_config():
    """A small extractor that trains in seconds."""
    return ExtractorConfig(embedding_dim=64, channels=(4, 8, 16))


@pytest.fixture(scope="session")
def hired_dataset():
    """A tiny condition-diverse hired corpus for training fixtures."""
    from repro.datasets.cache import DatasetCache
    from repro.datasets.standard import generate_hired_corpus

    return generate_hired_corpus(
        num_people=24,
        nominal_trials=8,
        condition_trials=3,
        cache=DatasetCache(),
    )


@pytest.fixture(scope="session")
def user_dataset():
    """A tiny evaluation campaign (6 users, disjoint from hired)."""
    return generate_dataset(user_spec(num_people=6, trials_per_person=8))


@pytest.fixture(scope="session")
def trained_model(hired_dataset, small_extractor_config):
    """A quickly trained small extractor, adequate for API tests."""
    model, history = train_extractor(
        hired_dataset.features,
        hired_dataset.labels,
        extractor_config=small_extractor_config,
        training_config=TrainingConfig(epochs=12, batch_size=64),
    )
    assert history.final_accuracy > 0.8
    return model


@pytest.fixture(scope="session")
def mandipass_system(trained_model):
    """A ready MandiPass device built on the small extractor."""
    from repro.config import MandiPassConfig, SecurityConfig

    config = MandiPassConfig(
        extractor=trained_model.config,
        security=SecurityConfig(
            template_dim=trained_model.config.embedding_dim,
            projected_dim=trained_model.config.embedding_dim,
            matrix_seed=7,
        ),
    )
    return MandiPass(trained_model, config=config)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)

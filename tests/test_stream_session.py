"""StreamSession behaviour: state machine, concurrency, faults, config.

Every test that blocks on threads runs under the same hand-rolled
watchdog idiom as ``test_serve.py`` (no pytest-timeout here): the body
executes in a daemon thread and a hang fails the test instead of
wedging the suite.  The concurrency section drives N parallel sessions
against one ``AuthServer`` and asserts the streaming contract:
exactly-once decision emission per detected onset, no deadlocks, and a
clean drain on ``stop()``.
"""

from __future__ import annotations

import functools
import threading

import numpy as np
import pytest

from repro import obs
from repro.config import StreamConfig
from repro.errors import ConfigError, ShapeError, StreamStateError
from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.runtime import clear, install
from repro.serve import AuthServer
from repro.stream import SessionState, StreamSession

WATCHDOG_S = 60.0


def watchdog(seconds: float = WATCHDOG_S):
    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            outcome: dict = {}

            def body() -> None:
                try:
                    func(*args, **kwargs)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    outcome["error"] = exc

            thread = threading.Thread(target=body, daemon=True)
            thread.start()
            thread.join(seconds)
            if thread.is_alive():
                pytest.fail(
                    f"{func.__name__} exceeded the {seconds:.0f}s watchdog "
                    "(probable deadlock or missed wakeup)"
                )
            if "error" in outcome:
                raise outcome["error"]

        return wrapper

    return decorate


@pytest.fixture(scope="module")
def stream_system():
    """(system, user_id, probes): untrained but real streaming substrate."""
    from repro.serve.loadgen import build_bench_system

    return build_bench_system(dtype="float32", num_probes=8)


def feed(session, stream, chunk=35):
    decisions = []
    for pos in range(0, stream.shape[0], chunk):
        decisions += session.push(stream[pos : pos + chunk])
    return decisions


def event_stream(probes, offset, events):
    return np.concatenate(
        [probes[(offset + j) % len(probes)] for j in range(events)], axis=0
    )


CFG = StreamConfig(cooldown_samples=105)


# -- config validation ----------------------------------------------------


class TestStreamConfig:
    def test_defaults_valid(self):
        StreamConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_size": 0},
            {"cooldown_samples": -1},
            {"rearm_after_samples": 0},
            {"verify_timeout_ms": 0.0},
            {"drain_timeout_s": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            StreamConfig(**kwargs)

    def test_rearm_must_cover_a_detection(self):
        from repro.config import MandiPassConfig

        with pytest.raises(ConfigError):
            MandiPassConfig(stream=StreamConfig(rearm_after_samples=64))


# -- single-session state machine ----------------------------------------


class TestSessionStateMachine:
    @watchdog()
    def test_requires_exactly_one_backend(self, stream_system):
        system, user_id, _ = stream_system
        with pytest.raises(StreamStateError):
            StreamSession(user_id)
        with pytest.raises(StreamStateError):
            StreamSession(user_id, system=system, server=object())

    @watchdog()
    def test_rejects_bad_chunk_shape(self, stream_system):
        system, user_id, _ = stream_system
        session = StreamSession(user_id, system=system, config=CFG)
        with pytest.raises(ShapeError):
            session.push(np.zeros((5, 4)))

    @watchdog()
    def test_exactly_once_per_onset(self, stream_system):
        system, user_id, probes = stream_system
        session = StreamSession(user_id, system=system, config=CFG)
        decisions = feed(session, event_stream(probes, 0, 4))
        decisions += session.close()
        assert len(decisions) == 4 == session.stats()["onsets"]
        assert all(d.status == "ok" for d in decisions)

    @watchdog()
    def test_trace_follows_the_documented_cycle(self, stream_system):
        system, user_id, probes = stream_system
        session = StreamSession(user_id, system=system, config=CFG)
        feed(session, probes[0])
        names = [name for name, _ in session.trace]
        assert names[:5] == [
            "IDLE", "ONSET", "CAPTURING", "VERIFYING", "COOLDOWN",
        ]

    @watchdog()
    def test_quiet_stream_rearms_within_bound(self, stream_system):
        system, user_id, _ = stream_system
        config = StreamConfig(rearm_after_samples=512)
        session = StreamSession(user_id, system=system, config=config)
        quiet = np.zeros((4096, 6))
        assert feed(session, quiet) == []
        assert session.state is SessionState.IDLE
        # Every rearm window is bounded, so memory use is too.
        assert session.stats()["rearms"] == 4096 // 512 - 1
        session.close()

    @watchdog()
    def test_closed_session_rejects_pushes(self, stream_system):
        system, user_id, probes = stream_system
        session = StreamSession(user_id, system=system, config=CFG)
        assert session.close() == []
        assert session.close() == []  # idempotent
        with pytest.raises(StreamStateError):
            session.push(probes[0][:10])

    @watchdog()
    def test_on_decision_callback_fires(self, stream_system):
        system, user_id, probes = stream_system
        seen = []
        session = StreamSession(
            user_id, system=system, config=CFG, on_decision=seen.append
        )
        returned = feed(session, probes[0]) + session.close()
        assert seen == returned and len(seen) == 1

    @watchdog()
    def test_local_gate_refuses_before_submit(self, stream_system):
        system, user_id, _ = stream_system
        from repro.core.verification import REJECTED_DISTANCE

        config = StreamConfig(cooldown_samples=105, local_gate=True)
        session = StreamSession(user_id, system=system, config=config)
        # A glitch burst triggers detection but despikes to nothing:
        # the gate must refuse locally, with the engine's sentinel.
        rng = np.random.default_rng(0)
        recording = rng.normal(scale=10.0, size=(300, 6))
        recording[100:104] += 50000.0
        decisions = feed(session, recording) + session.close()
        assert len(decisions) == 1
        assert decisions[0].result.distance == REJECTED_DISTANCE
        assert not decisions[0].result.accepted

    @watchdog()
    def test_metrics_families_populated(self, stream_system):
        system, user_id, probes = stream_system
        with obs.collecting() as registry:
            session = StreamSession(user_id, system=system, config=CFG)
            while_open = registry.gauge("stream_sessions_active").value
            feed(session, probes[0])
            session.close()
            after_close = registry.gauge("stream_sessions_active").value
        assert registry.counter("stream_samples_total").value == float(
            probes[0].shape[0]
        )
        assert registry.counter("stream_onsets_total").value == 1
        assert (
            registry.counter("stream_decisions_total", decision="accept").value
            + registry.counter("stream_decisions_total", decision="reject").value
        ) == 1
        assert while_open - after_close == 1.0
        assert (
            registry.histogram("stream_decision_latency_seconds").count == 1
        )


# -- fault injection ------------------------------------------------------


class TestStreamFaults:
    @watchdog()
    def test_push_fault_drops_chunk_but_session_survives(self, stream_system):
        system, user_id, probes = stream_system
        plan = FaultPlan(
            [FaultRule("stream.push", "error", probability=1.0, max_fires=2)],
            seed=0,
        )
        session = StreamSession(user_id, system=system, config=CFG)
        install(plan)
        try:
            assert session.push(probes[0][:35]) == []
            assert session.push(probes[0][35:70]) == []
        finally:
            clear()
        assert session.stats()["dropped_chunks"] == 2
        # The stream continues from where the transport recovered; a
        # later complete event still authenticates.
        decisions = feed(session, probes[1]) + session.close()
        assert len(decisions) == 1 and decisions[0].status == "ok"


# -- N sessions against one server ---------------------------------------


class TestConcurrentSessions:
    @watchdog()
    def test_parallel_sessions_exactly_once_and_no_deadlock(self, stream_system):
        system, user_id, probes = stream_system
        events, num_sessions = 3, 6
        results: dict[int, list] = {}
        with AuthServer(system) as server:
            sessions = [
                server.open_stream(user_id, stream_config=CFG, session_id=f"s{i}")
                for i in range(num_sessions)
            ]
            assert len(server.streams) == num_sessions

            def pump(i: int) -> None:
                stream = event_stream(probes, i, events)
                decisions = feed(sessions[i], stream)
                decisions += sessions[i].drain()
                results[i] = decisions

            threads = [
                threading.Thread(target=pump, args=(i,), daemon=True)
                for i in range(num_sessions)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(WATCHDOG_S / 2)
            assert not any(thread.is_alive() for thread in threads)
        for i in range(num_sessions):
            assert len(results[i]) == events, f"session {i}"
            assert all(d.status == "ok" for d in results[i])
            assert all(d.session_id == f"s{i}" for d in results[i])

    @watchdog()
    def test_server_decisions_match_sync_reference(self, stream_system):
        # Same stream, same chunking: the server-backed session must
        # agree with the system-backed one on every structural field;
        # distances agree to float32 batch-composition tolerance (the
        # dynamic batcher coalesces windows into different batch
        # shapes, the same epsilon the serving layer already carries).
        system, user_id, probes = stream_system
        stream = event_stream(probes, 0, 2)
        sync_session = StreamSession(user_id, system=system, config=CFG)
        sync = feed(sync_session, stream) + sync_session.close()
        with AuthServer(system) as server:
            session = server.open_stream(user_id, stream_config=CFG)
            served = feed(session, stream) + session.drain()
        assert [
            (d.onset, d.window_start, d.window_end) for d in served
        ] == [(d.onset, d.window_start, d.window_end) for d in sync]
        assert session.trace == sync_session.trace
        np.testing.assert_allclose(
            [d.result.distance for d in served],
            [d.result.distance for d in sync],
            rtol=1e-5,
        )

    @watchdog()
    def test_stop_drains_in_flight_decisions(self, stream_system):
        system, user_id, probes = stream_system
        seen = []
        server = AuthServer(system).start()
        session = server.open_stream(
            user_id, stream_config=CFG, on_decision=seen.append
        )
        feed(session, probes[0])
        assert server.stop(drain=True)
        # stop() closed the session, draining its decision exactly once.
        assert session.closed
        assert len(seen) == 1 and seen[0].status == "ok"
        assert server.streams == ()

    @watchdog()
    def test_open_stream_requires_running_server(self, stream_system):
        system, user_id, _ = stream_system
        from repro.errors import AdmissionRejectedError

        server = AuthServer(system)
        with pytest.raises(AdmissionRejectedError):
            server.open_stream(user_id)
        server.start()
        server.stop()
        with pytest.raises(AdmissionRejectedError):
            server.open_stream(user_id)


# -- bench smoke (coverage for repro.stream.bench) ------------------------


class TestBenchSmoke:
    @watchdog()
    def test_quick_benchmark_report_shape(self, tmp_path):
        from repro.stream.bench import stream_benchmark

        out = tmp_path / "BENCH_stream.json"
        report = stream_benchmark(
            session_counts=(1, 2), repeats=2, output_path=out
        )
        assert out.exists()
        assert report["claims"]["exactly_once"] is True
        assert {row["sessions"] for row in report["sweep"]} == {1, 2}
        for row in report["sweep"]:
            assert row["decisions"] == row["expected_decisions"]

"""Tests for the extended anatomy parameters and the coupling response."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.imu.sensor import _ear_coupling_filter, _peaking_biquad
from repro.dsp.stft import istft_overlap_add, stft


class TestExtendedAnatomy:
    def test_resonance_parameters_validated(self, population):
        person = population[0]
        with pytest.raises(ConfigError):
            dataclasses.replace(person, ear_resonance_hz=10.0)
        with pytest.raises(ConfigError):
            dataclasses.replace(person, ear_resonance_q=-1.0)
        with pytest.raises(ConfigError):
            dataclasses.replace(person, closure_sharpness=9.0)
        with pytest.raises(ConfigError):
            dataclasses.replace(person, breathiness=5.0)
        with pytest.raises(ConfigError):
            dataclasses.replace(person, mode2_hz=1000.0)
        with pytest.raises(ConfigError):
            dataclasses.replace(person, notch_q=0.0)

    def test_population_spreads_resonances(self):
        from repro.physio import sample_population

        pop = sample_population(30, 5, seed=2)
        centers = [p.ear_resonance_hz for p in pop]
        assert np.std(centers) > 15.0
        modes = [p.mode2_hz for p in pop]
        assert np.std(modes) > 20.0


class TestCouplingResponse:
    RATE = 2800.0

    def test_peaking_biquad_boosts_center(self):
        b, a = _peaking_biquad(100.0, 5.0, 12.0, self.RATE)
        # Evaluate |H| at the centre and far away.
        w_center = np.exp(-2j * np.pi * 100.0 / self.RATE)
        w_far = np.exp(-2j * np.pi * 700.0 / self.RATE)

        def mag(z):
            return abs(
                (b[0] + b[1] * z + b[2] * z**2) / (a[0] + a[1] * z + a[2] * z**2)
            )

        boost_db = 20.0 * np.log10(mag(w_center))
        assert boost_db == pytest.approx(12.0, abs=1.0)
        assert mag(w_far) == pytest.approx(1.0, abs=0.1)

    def test_negative_gain_cuts(self):
        b, a = _peaking_biquad(100.0, 5.0, -15.0, self.RATE)
        z = np.exp(-2j * np.pi * 100.0 / self.RATE)
        mag = abs((b[0] + b[1] * z + b[2] * z**2) / (a[0] + a[1] * z + a[2] * z**2))
        assert 20.0 * np.log10(mag) == pytest.approx(-15.0, abs=1.0)

    def test_coupling_filter_is_person_specific(self, population, rng):
        signal = rng.normal(size=2800)
        out_a = _ear_coupling_filter(signal, population[0], self.RATE)
        out_b = _ear_coupling_filter(signal, population[1], self.RATE)
        assert not np.allclose(out_a, out_b)

    def test_coupling_filter_shapes_spectrum_at_resonance(self, population, rng):
        person = population[1]
        signal = rng.normal(size=28000)
        out = _ear_coupling_filter(signal, person, self.RATE)
        freqs = np.fft.rfftfreq(signal.size, 1.0 / self.RATE)
        in_spec = np.abs(np.fft.rfft(signal)) ** 2
        out_spec = np.abs(np.fft.rfft(out)) ** 2
        near = np.abs(freqs - person.ear_resonance_hz) < 5.0
        far = (freqs > 600) & (freqs < 900)
        gain_near = out_spec[near].sum() / in_spec[near].sum()
        gain_far = out_spec[far].sum() / in_spec[far].sum()
        assert gain_near > 1.5 * gain_far


class TestIstft:
    def test_round_trip_interior(self, rng):
        signal = rng.normal(size=512)
        frames = stft(signal, frame_length=64, hop=16)
        rebuilt = istft_overlap_add(frames, frame_length=64, hop=16)
        # Interior samples reconstruct closely (edges lack full overlap,
        # and the rectangular-synthesis normalisation is approximate).
        interior = slice(64, 448)
        corr = np.corrcoef(rebuilt[interior], signal[interior])[0, 1]
        assert corr > 0.95

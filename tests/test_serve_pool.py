"""Multi-process serving: shm hygiene, epoch parity, pool lifecycle.

The expensive spawn-backed tests are few and share servers where they
can — on a 1-CPU container each worker process costs real wall-clock
to boot.  Everything that can be verified without a child process
(segment packing, epoch export/import, zero-copy model adoption,
metrics merging) is, so failures localise to the layer that broke.

Every test asserts the shared-memory namespace is clean on teardown —
a leaked segment in any test here is a bug in pool/server shutdown,
not acceptable collateral.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ServingConfig
from repro.errors import (
    ConfigError,
    ModelError,
    ServingError,
    ShapeError,
    VerificationError,
    WorkerKilledError,
)
from repro.serve import AuthServer, RequestStatus, WorkerMetricsAggregator
from repro.serve import shm as serve_shm
from repro.serve.pool import WorkerPool
from repro.serve.server import RequestKind

from tests.test_serve import _assert_same_result, watchdog


@pytest.fixture(autouse=True)
def _clean_shm_namespace():
    yield
    serve_shm.assert_no_leaked_segments()


@pytest.fixture(scope="module")
def pool_system():
    """(system, user_id, probes) with a second user so identify matters."""
    from repro.imu import Recorder
    from repro.physio import sample_population
    from repro.serve.loadgen import build_bench_system

    system, user_id, probes = build_bench_system(dtype="float32", num_probes=10)
    population = sample_population(4, 1, seed=0)
    recorder = Recorder(seed=7)
    system.enroll(
        "second", [recorder.record(population[1], trial_index=i) for i in range(4)]
    )
    return system, user_id, probes


# -- shared-memory segment layer (no child processes) ---------------------


class TestShm:
    def test_publish_attach_roundtrip_bitwise(self):
        arrays = {
            "a": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b": np.arange(5, dtype=np.float32),
            "flags": np.array([True, False, True]),
        }
        segment, manifest = serve_shm.publish(arrays, "t")
        try:
            assert manifest["segment"] == segment.name
            handle, views = serve_shm.attach(manifest)
            for key, value in arrays.items():
                assert views[key].dtype == value.dtype
                assert views[key].tobytes() == value.tobytes()
            # Workers must not be able to scribble on shared state.
            assert not views["a"].flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                views["a"][0, 0] = 1.0
            del views
            handle.close()
        finally:
            serve_shm.unlink(segment)
        assert serve_shm.leaked_segments() == []

    def test_entries_are_aligned(self):
        arrays = {
            "odd": np.arange(3, dtype=np.uint8),
            "next": np.arange(4, dtype=np.float64),
        }
        segment, manifest = serve_shm.publish(arrays, "t")
        try:
            for entry in manifest["entries"].values():
                assert entry["offset"] % serve_shm.ALIGNMENT == 0
        finally:
            serve_shm.unlink(segment)

    def test_empty_publish_has_no_segment(self):
        segment, manifest = serve_shm.publish({}, "t")
        assert segment is None
        assert manifest["segment"] is None
        handle, views = serve_shm.attach(manifest)
        assert handle is None and views == {}

    def test_attach_after_unlink_is_a_serving_error(self):
        segment, manifest = serve_shm.publish(
            {"x": np.zeros(4, dtype=np.float64)}, "t"
        )
        serve_shm.unlink(segment)
        with pytest.raises(ServingError, match="retired"):
            serve_shm.attach(manifest)

    def test_unlink_is_idempotent(self):
        segment, _ = serve_shm.publish({"x": np.zeros(2)}, "t")
        serve_shm.unlink(segment)
        serve_shm.unlink(segment)  # second call must not raise
        serve_shm.unlink(None)

    def test_leak_detection_and_assert_helper(self):
        segment, _ = serve_shm.publish({"x": np.zeros(2)}, "leak")
        assert segment.name in serve_shm.leaked_segments()
        with pytest.raises(AssertionError, match="leaked shared-memory"):
            serve_shm.assert_no_leaked_segments()
        # The helper cleans up after composing the message, so the
        # namespace is usable again (and this test's teardown passes).
        assert serve_shm.leaked_segments() == []


# -- gallery epoch export/import (no child processes) ---------------------


class TestEpochExport:
    def test_from_epoch_scores_bitwise_identical(self, pool_system):
        system, user_id, probes = pool_system
        version, arrays, meta = system.export_epoch()
        assert version == system.template_version
        segment, manifest = serve_shm.publish(arrays, "epoch")
        try:
            handle, views = serve_shm.attach(manifest)
            from repro.core.gallery.sharded import ShardedGallery

            clone = ShardedGallery.from_epoch(system.config.gallery, views, meta)
            embeddings = system.engine.embed(probes[:6]).values
            want = system._current_gallery().best_match(embeddings)
            got = clone.best_match(embeddings)
            assert len(got) == len(want)
            for g, w in zip(got, want):
                assert g.user_id == w.user_id
                assert g.distance == w.distance  # bitwise, not approx
            del views, clone
        finally:
            serve_shm.unlink(segment)

    def test_row_matches_parent_transform(self, pool_system):
        system, user_id, _ = pool_system
        _, arrays, meta = system.export_epoch()
        segment, manifest = serve_shm.publish(arrays, "epoch")
        try:
            _, views = serve_shm.attach(manifest)
            from repro.core.gallery.sharded import ShardedGallery

            clone = ShardedGallery.from_epoch(system.config.gallery, views, meta)
            matrix, template = clone.row(user_id)
            transform = system._transforms[user_id]
            assert np.asarray(matrix).tobytes() == np.asarray(
                transform.matrix, dtype=np.float64
            ).tobytes()
            assert clone.row("nobody") is None
            del views, clone, matrix, template
        finally:
            serve_shm.unlink(segment)

    def test_export_with_pending_mutations_refuses(self, pool_system):
        system, *_ = pool_system
        gallery = system._current_gallery()
        gallery.sync()
        in_dim = gallery.in_dim or 4
        out_dim = gallery.out_dim or 4
        gallery.upsert(
            "phantom", np.zeros((in_dim, out_dim)), np.zeros(out_dim)
        )
        try:
            with pytest.raises(ShapeError, match="pending"):
                gallery.export_epoch()
        finally:
            gallery._log.pop()  # drop the phantom before it ever applies

    def test_empty_system_exports_empty_epoch(self):
        from repro.config import ExtractorConfig, MandiPassConfig, SecurityConfig
        from repro.core.extractor import TwoBranchExtractor
        from repro.core.system import MandiPass

        config = MandiPassConfig(
            extractor=ExtractorConfig(embedding_dim=32, channels=(2, 4, 8)),
            security=SecurityConfig(template_dim=32, projected_dim=32),
        )
        model = TwoBranchExtractor(config.extractor, num_classes=2, seed=0).eval()
        system = MandiPass(model, config=config)
        version, arrays, meta = system.export_epoch()
        assert version == 0 and arrays == {} and meta["shards"] == []


# -- zero-copy model adoption (no child processes) ------------------------


class TestAdoptState:
    def test_adopted_model_embeds_bitwise_identically(self, pool_system):
        from repro.core.engine import InferenceEngine
        from repro.core.extractor import TwoBranchExtractor
        from repro.core.frontend import make_frontend
        from repro.dsp.pipeline import Preprocessor

        system, _, probes = pool_system
        segment, manifest = serve_shm.publish(system.model.state_dict(), "model")
        try:
            _, views = serve_shm.attach(manifest)
            clone = TwoBranchExtractor(
                system.config.extractor, num_classes=4, seed=1234
            ).eval()
            clone.adopt_state(views)
            engine = InferenceEngine(
                clone,
                Preprocessor(system.config.preprocess),
                make_frontend(system.config.extractor.frontend),
                batch_size=system.config.inference.batch_size,
                compute_dtype=system.config.inference.compute_dtype,
                resilience=system.config.resilience,
            )
            want = system.engine.embed(probes[:3]).values
            got = engine.embed(probes[:3]).values
            assert got.tobytes() == want.tobytes()
            del views, clone, engine
        finally:
            serve_shm.unlink(segment)

    def test_adopt_rejects_non_float64(self, pool_system):
        system, *_ = pool_system
        from repro.core.extractor import TwoBranchExtractor

        state = {
            key: value.astype(np.float32)
            for key, value in system.model.state_dict().items()
        }
        clone = TwoBranchExtractor(
            system.config.extractor, num_classes=4, seed=0
        ).eval()
        with pytest.raises(ModelError, match="float64"):
            clone.adopt_state(state)


# -- config + metrics aggregation (no child processes) --------------------


class TestPoolConfig:
    def test_new_knobs_validate(self):
        ServingConfig(num_worker_processes=2, mp_start_method="spawn")
        with pytest.raises(ConfigError):
            ServingConfig(num_worker_processes=-1)
        with pytest.raises(ConfigError):
            ServingConfig(mp_start_method="teleport")
        with pytest.raises(ConfigError):
            ServingConfig(epoch_min_publish_interval_ms=-1.0)


class TestWorkerMetricsAggregator:
    SNAP_A = {
        "counters": {'decisions_total{decision="accept"}': 3.0},
        "gauges": {"serve_worker_mapped_generation": 2.0},
        "histograms": {},
    }
    SNAP_B = {
        "counters": {'decisions_total{decision="accept"}': 5.0},
        "gauges": {"serve_worker_mapped_generation": 3.0},
        "histograms": {},
    }

    def test_latest_snapshot_wins_and_merge_is_idempotent(self):
        agg = WorkerMetricsAggregator()
        agg.update(0, 0, self.SNAP_A)
        agg.update(0, 0, self.SNAP_B)  # cumulative: B supersedes A
        agg.update(0, 0, self.SNAP_B)  # replay changes nothing
        merged = agg.merged()
        assert merged["counters"]['decisions_total{decision="accept"}'] == 5.0

    def test_incarnations_sum_but_replays_do_not(self):
        agg = WorkerMetricsAggregator()
        agg.update(0, 0, self.SNAP_B)
        agg.update(0, 1, self.SNAP_A)  # respawn: fresh registry, adds
        agg.update(1, 0, self.SNAP_A)  # sibling process, adds
        agg.update(0, 1, self.SNAP_A)  # replay: no double count
        merged = agg.merged()
        assert merged["counters"]['decisions_total{decision="accept"}'] == 11.0
        # Gauges merge by max — a point-in-time reading, not a total.
        assert merged["gauges"]["serve_worker_mapped_generation"] == 3.0

    def test_empty_aggregator_merges_to_empty(self):
        merged = WorkerMetricsAggregator().merged()
        assert merged["counters"] == {}
        assert merged["gauges"] == {}
        assert merged["histograms"] == {}


# -- live worker processes ------------------------------------------------


class TestWorkerPool:
    @watchdog(180)
    def test_pool_parity_epoch_swap_and_clean_stop(self, pool_system):
        """One pool exercise: parity, publish, revoke, stop — no leaks.

        Grouped deliberately: each spawn costs seconds on a small
        container, so the lifecycle assertions share two processes.
        """
        from repro.imu import Recorder
        from repro.physio import sample_population

        system, user_id, probes = pool_system
        pool = WorkerPool(system, ServingConfig(num_worker_processes=2))
        pool.start()
        try:
            pool.ensure_current_epoch()
            first_generation = pool.epoch_generation

            got = pool.execute(0, RequestKind.VERIFY, user_id, probes[:3])
            want = system.verify_many(user_id, probes[:3])
            for g, w in zip(got, want):
                _assert_same_result(g, w, strict=True)

            got = pool.execute(1, RequestKind.IDENTIFY, None, probes[:4])
            want = system.identify_many(probes[:4])
            for g, w in zip(got, want):
                _assert_same_result(g, w, strict=True)

            # Unknown user: the worker raises the exact facade error.
            with pytest.raises(VerificationError, match="not enrolled"):
                pool.execute(0, RequestKind.VERIFY, "ghost", probes[:1])

            # Mutations republish: enroll, then a worker that maps the
            # new epoch scores the new user loop-exactly.
            population = sample_population(4, 1, seed=0)
            recorder = Recorder(seed=21)
            system.enroll(
                "third",
                [recorder.record(population[2], trial_index=40 + i) for i in range(4)],
            )
            pool.ensure_current_epoch()
            assert pool.epoch_generation > first_generation
            got = pool.execute(0, RequestKind.IDENTIFY, None, probes[:4])
            want = system.identify_many(probes[:4])
            for g, w in zip(got, want):
                _assert_same_result(g, w, strict=True)

            # Revoke propagates the same way (tombstone in the epoch).
            system.revoke("third")
            pool.ensure_current_epoch()
            got = pool.execute(1, RequestKind.IDENTIFY, None, probes[:4])
            want = system.identify_many(probes[:4])
            for g, w in zip(got, want):
                _assert_same_result(g, w, strict=True)

            # Publishing with nothing new is a no-op, not a new epoch.
            generation = pool.epoch_generation
            pool.ensure_current_epoch()
            assert pool.epoch_generation == generation
        finally:
            pool.stop()
        assert serve_shm.leaked_segments() == []
        # stop() is idempotent, and a stopped pool refuses work.
        pool.stop()
        with pytest.raises(ServingError):
            pool.execute(0, RequestKind.VERIFY, user_id, probes[:1])

    @watchdog(180)
    def test_server_mp_bitwise_parity_when_batch_matches(self, pool_system):
        system, user_id, probes = pool_system
        direct_verify = system.verify_many(user_id, probes)
        direct_identify = system.identify_many(probes[:6])
        config = ServingConfig(
            num_worker_processes=2, max_batch_size=64, max_wait_ms=50.0
        )
        server = AuthServer(system, config=config)
        # Queue everything before start: one micro-batch per kind with
        # the direct call's exact composition -> bitwise equality even
        # though the scoring ran in a different process.
        verify_futures = [server.verify(user_id, probe) for probe in probes]
        identify_futures = [server.identify(probe) for probe in probes[:6]]
        server.start()
        served_verify = [f.result(timeout=60) for f in verify_futures]
        served_identify = [f.result(timeout=60) for f in identify_futures]
        server.stop()
        for got, want in zip(served_verify, direct_verify):
            _assert_same_result(got, want, strict=True)
        for got, want in zip(served_identify, direct_identify):
            _assert_same_result(got, want, strict=True)
        assert serve_shm.leaked_segments() == []

    @watchdog(240)
    def test_enroll_mid_stream_returns_only_loop_exact_decisions(
        self, pool_system
    ):
        """Epoch swap under sustained load: every result is loop-exact.

        While identifies stream through a 1-process pool, the parent
        enrolls a new user (triggering a copy-on-write republish).
        Each served decision must equal the direct result against
        either the pre-enroll or the post-enroll gallery — never a
        torn hybrid — and enroll never had to wait for the stream.
        """
        from repro.imu import Recorder
        from repro.physio import sample_population

        system, user_id, probes = pool_system
        probe = probes[1]
        pre = system.identify_many([probe])[0]
        config = ServingConfig(
            num_worker_processes=1, max_batch_size=1, max_wait_ms=0.5
        )
        population = sample_population(4, 1, seed=0)
        recorder = Recorder(seed=33)
        enrollment = [
            recorder.record(population[3], trial_index=60 + i) for i in range(4)
        ]
        served: list = []
        try:
            with AuthServer(system, config=config) as server:
                for index in range(12):
                    if index == 4:
                        system.enroll("mid-stream", enrollment)
                    served.append(server.identify(probe).result(timeout=60))
            post = system.identify_many([probe])[0]
            for result in served:
                matches_pre = (
                    result.user_id == pre.user_id
                    and result.distance == pre.distance
                )
                matches_post = (
                    result.user_id == post.user_id
                    and result.distance == post.distance
                )
                assert matches_pre or matches_post, result
            # The swap actually happened while the stream was running.
            tail = served[-1]
            assert (
                tail.user_id == post.user_id and tail.distance == post.distance
            )
        finally:
            system.revoke("mid-stream")
        assert serve_shm.leaked_segments() == []

    @watchdog(240)
    def test_worker_process_kill_respawns_and_settles_exactly_once(
        self, pool_system, monkeypatch
    ):
        """Injected serve.worker kill terminates the real process.

        The doomed batch fails with ``WorkerKilledError`` (settled
        exactly once through the idempotent future), the pool respawns
        the process, and fresh traffic is served by the replacement —
        with no leaked segments from the dead incarnation.
        """
        from repro.faults import FaultPlan, FaultRule
        from repro.serve.server import AuthFuture

        system, user_id, probes = pool_system
        settle_counts: dict[int, int] = {}
        original = AuthFuture._settle

        def counting(self, value, error, status):
            settled = original(self, value, error, status)
            if settled:
                settle_counts[id(self)] = settle_counts.get(id(self), 0) + 1
            return settled

        monkeypatch.setattr(AuthFuture, "_settle", counting)
        config = ServingConfig(
            num_worker_processes=1, max_batch_size=4, max_wait_ms=5000.0
        )
        server = AuthServer(system, config=config)
        plan = FaultPlan([FaultRule("serve.worker", "kill", max_fires=1)], seed=0)
        with plan.active():
            with server:
                doomed = [server.verify(user_id, probes[i]) for i in range(4)]
                for future in doomed:
                    assert future.wait(60)
                    assert future.status is RequestStatus.FAILED
                    assert isinstance(future.exception(0), WorkerKilledError)
                # The respawned process serves fresh traffic, and its
                # results still match the direct path bitwise.
                survivor = server.verify(user_id, probes[4])
                assert survivor.wait(60)
                assert survivor.status is RequestStatus.OK
                direct = system.verify_many(user_id, [probes[4]])[0]
                _assert_same_result(survivor.result(0), direct, strict=True)
        assert set(settle_counts.values()) == {1}
        assert len(settle_counts) == 5
        assert serve_shm.leaked_segments() == []

"""Similarity, MandiblePrint extraction and training tests."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core.mandibleprint import extract_embeddings
from repro.core.similarity import (
    accept,
    center_embedding,
    cosine_distance,
    mandibleprint_distance,
    pairwise_cosine_distance,
)
from repro.core.training import evaluate_classification, train_extractor
from repro.errors import ShapeError


class TestCosineDistance:
    def test_identical_vectors_zero(self, rng):
        v = rng.normal(size=16)
        assert cosine_distance(v, v) == pytest.approx(0.0, abs=1e-12)

    def test_opposite_vectors_two(self, rng):
        v = rng.normal(size=16)
        assert cosine_distance(v, -v) == pytest.approx(2.0)

    def test_orthogonal_vectors_one(self):
        assert cosine_distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_scale_invariant(self, rng):
        u, v = rng.normal(size=8), rng.normal(size=8)
        assert cosine_distance(u, v) == pytest.approx(cosine_distance(3 * u, 0.5 * v))

    def test_zero_vector_maximally_uninformative(self):
        assert cosine_distance(np.zeros(4), np.ones(4)) == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            cosine_distance(np.zeros(3), np.zeros(4))

    def test_pairwise_matches_scalar(self, rng):
        a = rng.normal(size=(4, 8))
        b = rng.normal(size=(3, 8))
        matrix = pairwise_cosine_distance(a, b)
        assert matrix.shape == (4, 3)
        for i in range(4):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(cosine_distance(a[i], b[j]))

    def test_pairwise_symmetric_zero_diagonal(self, rng):
        a = rng.normal(size=(5, 8))
        matrix = pairwise_cosine_distance(a, a)
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-12)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)

    def test_accept_rule(self):
        assert accept(0.44, 0.45)
        assert accept(0.45, 0.45)
        assert not accept(0.46, 0.45)

    def test_center_embedding(self):
        np.testing.assert_allclose(center_embedding(np.full(4, 0.5)), np.zeros(4))

    def test_mandibleprint_distance_is_centered(self, rng):
        u = rng.uniform(size=16)
        v = rng.uniform(size=16)
        expected = cosine_distance(u - 0.5, v - 0.5)
        assert mandibleprint_distance(u, v) == pytest.approx(expected)


class TestTraining:
    def test_training_reduces_loss(self, hired_dataset, small_extractor_config):
        _, history = train_extractor(
            hired_dataset.features,
            hired_dataset.labels,
            extractor_config=small_extractor_config,
            training_config=TrainingConfig(epochs=4, batch_size=64),
        )
        assert history.losses[-1] < history.losses[0]

    def test_trained_accuracy_beats_chance(self, trained_model, hired_dataset):
        acc = evaluate_classification(
            trained_model, hired_dataset.features, hired_dataset.labels
        )
        chance = 1.0 / (int(hired_dataset.labels.max()) + 1)
        assert acc > 5 * chance

    def test_model_left_in_eval_mode(self, trained_model):
        assert not trained_model.training

    def test_continue_training_existing_model(
        self, hired_dataset, small_extractor_config
    ):
        # Train a throwaway model (never mutate the shared fixture).
        model, _ = train_extractor(
            hired_dataset.features[:64],
            hired_dataset.labels[:64],
            extractor_config=small_extractor_config,
            training_config=TrainingConfig(epochs=1),
        )
        _, history = train_extractor(
            hired_dataset.features[:64],
            hired_dataset.labels[:64],
            training_config=TrainingConfig(epochs=1),
            model=model,
        )
        assert len(history.losses) == 1

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ShapeError):
            train_extractor(np.zeros((4, 6, 31)), np.zeros(4))

    def test_rejects_label_mismatch(self):
        with pytest.raises(ShapeError):
            train_extractor(np.zeros((4, 2, 6, 31)), np.zeros(5))

    def test_history_properties_raise_when_empty(self):
        from repro.core.training import TrainingHistory

        with pytest.raises(ShapeError):
            TrainingHistory().final_loss


class TestExtractEmbeddings:
    def test_shape(self, trained_model, hired_dataset):
        emb = extract_embeddings(trained_model, hired_dataset.features[:10])
        assert emb.shape == (10, trained_model.config.embedding_dim)

    def test_batching_equivalence(self, trained_model, hired_dataset):
        features = hired_dataset.features[:9]
        whole = extract_embeddings(trained_model, features, batch_size=256)
        chunked = extract_embeddings(trained_model, features, batch_size=2)
        np.testing.assert_allclose(whole, chunked)

    def test_empty_batch(self, trained_model):
        emb = extract_embeddings(trained_model, np.empty((0, 2, 6, 31)))
        assert emb.shape == (0, trained_model.config.embedding_dim)

    def test_same_user_closer_than_different(self, trained_model, user_dataset):
        emb = center_embedding(extract_embeddings(trained_model, user_dataset.features))
        labels = user_dataset.labels
        d_same = []
        d_diff = []
        matrix = pairwise_cosine_distance(emb, emb)
        for i in range(len(labels)):
            for j in range(i + 1, len(labels)):
                (d_same if labels[i] == labels[j] else d_diff).append(matrix[i, j])
        assert np.mean(d_same) < np.mean(d_diff)

"""Tests for random forest, logistic regression, evaluation helpers,
score normalisation and extended curves."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.eval import (
    TNorm,
    ZNorm,
    bootstrap_eer_ci,
    det_curve,
    normalized_pair_distances,
    roc_auc,
    subject_bootstrap_eer_ci,
)
from repro.eval.metrics import equal_error_rate
from repro.ml import (
    LogisticRegressionClassifier,
    RandomForestClassifier,
    confusion_matrix,
    cross_validate,
    macro_f1,
    precision_recall_f1,
    stratified_k_fold,
)


def _blobs(rng, n_per_class=40, spread=0.5):
    centers = np.array([[0, 0, 0, 0], [5, 5, 0, 0], [0, 5, 5, 5]], dtype=float)
    xs, ys = [], []
    for label, center in enumerate(centers):
        xs.append(rng.normal(center, spread, size=(n_per_class, 4)))
        ys.append(np.full(n_per_class, label))
    return np.concatenate(xs), np.concatenate(ys)


class TestNewClassifiers:
    def test_forest_fits_blobs(self, rng):
        inputs, labels = _blobs(rng)
        clf = RandomForestClassifier(num_trees=15).fit(inputs, labels)
        assert clf.score(inputs, labels) > 0.95

    def test_forest_beats_single_shallow_tree_on_noisy_data(self, rng):
        from repro.ml import DecisionTreeClassifier

        inputs, labels = _blobs(rng, spread=2.2)
        tree = DecisionTreeClassifier(max_depth=3).fit(inputs, labels)
        forest = RandomForestClassifier(num_trees=30, max_depth=3).fit(inputs, labels)
        assert forest.score(inputs, labels) >= tree.score(inputs, labels) - 0.02

    def test_forest_rejects_zero_trees(self):
        with pytest.raises(ConfigError):
            RandomForestClassifier(num_trees=0)

    def test_logistic_fits_blobs(self, rng):
        inputs, labels = _blobs(rng)
        clf = LogisticRegressionClassifier(epochs=100).fit(inputs, labels)
        assert clf.score(inputs, labels) > 0.95

    def test_logistic_probabilities_sum_to_one(self, rng):
        inputs, labels = _blobs(rng)
        clf = LogisticRegressionClassifier(epochs=50).fit(inputs, labels)
        probs = clf.predict_proba(inputs[:7])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_logistic_rejects_bad_lr(self):
        with pytest.raises(ConfigError):
            LogisticRegressionClassifier(learning_rate=0.0)


class TestClassificationMetrics:
    def test_confusion_matrix_counts(self):
        matrix = confusion_matrix(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]))
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_confusion_matrix_trace_is_correct_count(self, rng):
        true = rng.integers(0, 4, 100)
        pred = rng.integers(0, 4, 100)
        matrix = confusion_matrix(true, pred, num_classes=4)
        assert np.trace(matrix) == np.sum(true == pred)

    def test_precision_recall_perfect(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        precision, recall, f1 = precision_recall_f1(labels, labels)
        np.testing.assert_allclose(precision, 1.0)
        np.testing.assert_allclose(recall, 1.0)
        np.testing.assert_allclose(f1, 1.0)

    def test_macro_f1_penalises_missing_class(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([0, 0, 0, 0])
        assert macro_f1(true, pred) < 0.5

    def test_stratified_folds_partition(self):
        labels = np.repeat(np.arange(3), 10)
        folds = stratified_k_fold(labels, k=5, seed=0)
        assert len(folds) == 5
        coverage = np.zeros(30, dtype=int)
        for _, test_mask in folds:
            coverage += test_mask
        np.testing.assert_array_equal(coverage, 1)

    def test_stratified_rejects_small_class(self):
        with pytest.raises(ConfigError):
            stratified_k_fold(np.array([0, 0, 1]), k=2)

    def test_cross_validate_scores(self, rng):
        inputs, labels = _blobs(rng, n_per_class=25)
        scores = cross_validate(
            lambda: RandomForestClassifier(num_trees=10), inputs, labels, k=3
        )
        assert scores.shape == (3,)
        assert scores.mean() > 0.9


class TestScoreNorm:
    def _embeddings(self, rng, people=6, per=8):
        centers = rng.normal(size=(people, 16))
        emb, labels = [], []
        for idx, center in enumerate(centers):
            emb.append(center + 0.15 * rng.normal(size=(per, 16)))
            labels.extend([idx] * per)
        return np.concatenate(emb), np.array(labels)

    def test_znorm_standardises_cohort_scores(self, rng):
        cohort = rng.normal(size=(50, 16))
        znorm = ZNorm(cohort)
        template = rng.normal(size=16)
        mean, std = znorm.statistics(template)
        assert std > 0
        # The template's own cohort scores standardise to ~N(0, 1).
        from repro.core.similarity import pairwise_cosine_distance

        scores = pairwise_cosine_distance(template[None], cohort)[0]
        z = (scores - mean) / std
        assert abs(z.mean()) < 1e-9
        assert z.std() == pytest.approx(1.0)

    def test_tnorm_matrix_rows(self, rng):
        cohort = rng.normal(size=(40, 16))
        tnorm = TNorm(cohort)
        probes = rng.normal(size=(5, 16))
        templates = rng.normal(size=(3, 16))
        from repro.core.similarity import pairwise_cosine_distance

        distances = pairwise_cosine_distance(probes, templates)
        normalized = tnorm.normalize_matrix(distances, probes)
        assert normalized.shape == (5, 3)
        single = tnorm.normalize(float(distances[2, 1]), probes[2])
        assert normalized[2, 1] == pytest.approx(single)

    def test_snorm_does_not_destroy_separation(self, rng):
        emb, labels = self._embeddings(rng)
        cohort = rng.normal(size=(60, 16))
        genuine, impostor = normalized_pair_distances(emb, labels, cohort)
        assert genuine.mean() < impostor.mean()
        eer = equal_error_rate(genuine, impostor)
        assert eer.eer < 0.1

    def test_rejects_tiny_cohort(self, rng):
        with pytest.raises(ShapeError):
            ZNorm(rng.normal(size=(1, 8)))

    def test_unknown_method_raises(self, rng):
        emb, labels = self._embeddings(rng)
        with pytest.raises(ConfigError):
            normalized_pair_distances(emb, labels, rng.normal(size=(10, 16)), "q-norm")


class TestCurves:
    def test_auc_perfect_separation(self, rng):
        genuine = rng.uniform(0.0, 0.3, 500)
        impostor = rng.uniform(0.7, 1.0, 500)
        assert roc_auc(genuine, impostor) == pytest.approx(1.0)

    def test_auc_chance(self, rng):
        scores = rng.normal(size=2000)
        assert roc_auc(scores, rng.normal(size=2000)) == pytest.approx(0.5, abs=0.03)

    def test_auc_handles_ties(self):
        genuine = np.array([0.1, 0.5, 0.5])
        impostor = np.array([0.5, 0.9])
        auc = roc_auc(genuine, impostor)
        assert 0.5 < auc < 1.0

    def test_det_curve_monotone(self, rng):
        genuine = rng.normal(0.3, 0.1, 500)
        impostor = rng.normal(0.7, 0.1, 500)
        far_dev, frr_dev = det_curve(genuine, impostor)
        assert np.all(np.diff(far_dev) >= 0)
        assert np.all(np.diff(frr_dev) <= 0)

    def test_bootstrap_ci_contains_point(self, rng):
        genuine = rng.normal(0.3, 0.1, 800)
        impostor = rng.normal(0.7, 0.1, 800)
        ci = bootstrap_eer_ci(genuine, impostor, num_resamples=50)
        assert ci.lower <= ci.point <= ci.upper
        assert 0.0 <= ci.lower and ci.upper <= 0.5

    def test_subject_bootstrap(self, rng):
        centers = rng.normal(size=(8, 12))
        emb, labels = [], []
        for idx, center in enumerate(centers):
            emb.append(center + 0.2 * rng.normal(size=(6, 12)))
            labels.extend([idx] * 6)
        ci = subject_bootstrap_eer_ci(
            np.concatenate(emb), np.array(labels), num_resamples=30
        )
        assert ci.lower <= ci.upper
        assert ci.upper <= 0.5

    def test_bootstrap_rejects_bad_confidence(self, rng):
        with pytest.raises(ConfigError):
            bootstrap_eer_ci(rng.normal(size=10), rng.normal(size=10), confidence=1.5)

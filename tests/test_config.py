"""Configuration validation tests."""

import dataclasses

import pytest

from repro.config import (
    DEFAULT_CONFIG,
    DecisionConfig,
    ExtractorConfig,
    MandiPassConfig,
    PreprocessConfig,
    SamplingConfig,
    SecurityConfig,
    TrainingConfig,
)
from repro.errors import ConfigError


class TestSamplingConfig:
    def test_defaults_match_paper(self):
        cfg = SamplingConfig()
        assert cfg.rate_hz == 350
        assert cfg.num_samples == 210

    def test_oversample_is_integer_ratio(self):
        cfg = SamplingConfig(rate_hz=350, internal_rate_hz=2800)
        assert cfg.oversample == 8

    def test_rejects_non_multiple_internal_rate(self):
        with pytest.raises(ConfigError):
            SamplingConfig(rate_hz=350, internal_rate_hz=1000)

    def test_rejects_negative_duration(self):
        with pytest.raises(ConfigError):
            SamplingConfig(duration_s=-1.0)

    def test_rejects_zero_rate(self):
        with pytest.raises(ConfigError):
            SamplingConfig(rate_hz=0)


class TestPreprocessConfig:
    def test_defaults_match_paper(self):
        cfg = PreprocessConfig()
        assert cfg.segment_length == 60
        assert cfg.onset_window == 10
        assert cfg.onset_std_start == 250.0
        assert cfg.onset_std_sustain == 100.0
        assert cfg.highpass_cutoff_hz == 20.0
        assert cfg.highpass_order == 4

    def test_rejects_cutoff_above_nyquist(self):
        with pytest.raises(ConfigError):
            PreprocessConfig(highpass_cutoff_hz=200.0, sample_rate_hz=350)

    def test_rejects_odd_order(self):
        with pytest.raises(ConfigError):
            PreprocessConfig(highpass_order=3)

    def test_rejects_tiny_segment(self):
        with pytest.raises(ConfigError):
            PreprocessConfig(segment_length=1)


class TestExtractorConfig:
    def test_defaults(self):
        cfg = ExtractorConfig()
        assert cfg.embedding_dim == 512
        assert cfg.frontend == "spectral"
        assert cfg.input_width == 31

    def test_expected_width_spectral(self):
        assert ExtractorConfig().expected_input_width(60) == 31

    def test_expected_width_gradient(self):
        cfg = ExtractorConfig(frontend="gradient", input_width=30)
        assert cfg.expected_input_width(60) == 30

    def test_rejects_unknown_frontend(self):
        with pytest.raises(ConfigError):
            ExtractorConfig(frontend="wavelet")

    def test_rejects_wrong_conv_count(self):
        with pytest.raises(ConfigError):
            ExtractorConfig(channels=(8, 16))

    def test_rejects_nonpositive_embedding(self):
        with pytest.raises(ConfigError):
            ExtractorConfig(embedding_dim=0)


class TestTrainingConfig:
    def test_rejects_zero_epochs(self):
        with pytest.raises(ConfigError):
            TrainingConfig(epochs=0)

    def test_rejects_negative_lr(self):
        with pytest.raises(ConfigError):
            TrainingConfig(learning_rate=-1e-3)


class TestDecisionConfig:
    def test_threshold_in_cosine_range(self):
        with pytest.raises(ConfigError):
            DecisionConfig(threshold=2.5)
        with pytest.raises(ConfigError):
            DecisionConfig(threshold=0.0)


class TestMandiPassConfig:
    def test_default_is_consistent(self):
        assert DEFAULT_CONFIG.extractor.input_width == 31

    def test_rejects_mismatched_rates(self):
        with pytest.raises(ConfigError):
            MandiPassConfig(sampling=SamplingConfig(rate_hz=700, internal_rate_hz=2800))

    def test_rejects_mismatched_width(self):
        with pytest.raises(ConfigError):
            MandiPassConfig(extractor=ExtractorConfig(input_width=30))

    def test_gradient_frontend_width_accepted(self):
        cfg = MandiPassConfig(
            extractor=ExtractorConfig(frontend="gradient", input_width=30)
        )
        assert cfg.extractor.frontend == "gradient"

    def test_rejects_mismatched_template_dim(self):
        with pytest.raises(ConfigError):
            MandiPassConfig(security=SecurityConfig(template_dim=128))

    def test_replace_returns_new_config(self):
        new = DEFAULT_CONFIG.replace(decision=DecisionConfig(threshold=0.3))
        assert new.decision.threshold == 0.3
        assert DEFAULT_CONFIG.decision.threshold != 0.3

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.decision = DecisionConfig(threshold=0.3)

"""CLI and production-model caching tests."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.config import ExtractorConfig
from repro.datasets.cache import DatasetCache
from repro.datasets.standard import concat_datasets, generate_hired_corpus
from repro.errors import ConfigError
from repro.eval.production import get_production_model


class TestCLI:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "MandiPass" in out
        assert "350 Hz" in out

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_flags_parsed(self):
        args = build_parser().parse_args(["train", "--people", "8", "--epochs", "2"])
        assert args.people == 8 and args.epochs == 2 and not args.force


class TestProductionModelCache:
    def test_train_and_reload_identical(self, tmp_path):
        cache = DatasetCache(tmp_path)
        config = ExtractorConfig(embedding_dim=32, channels=(2, 4, 8))
        kwargs = dict(
            cache=cache,
            num_people=6,
            nominal_trials=4,
            condition_trials=1,
            epochs=2,
            extractor_config=config,
        )
        first = get_production_model(**kwargs)
        # A second call must load from disk, bit-identical.
        second = get_production_model(**kwargs)
        for p1, p2 in zip(first.parameters(), second.parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_force_retrain_gives_same_weights(self, tmp_path):
        """Training is deterministic in the seed, so retraining matches."""
        cache = DatasetCache(tmp_path)
        config = ExtractorConfig(embedding_dim=32, channels=(2, 4, 8))
        kwargs = dict(
            cache=cache,
            num_people=6,
            nominal_trials=4,
            condition_trials=1,
            epochs=2,
            extractor_config=config,
        )
        first = get_production_model(**kwargs)
        second = get_production_model(force_retrain=True, **kwargs)
        for p1, p2 in zip(first.parameters(), second.parameters()):
            np.testing.assert_allclose(p1.data, p2.data)


class TestHiredCorpus:
    def test_corpus_contains_conditions(self, tmp_path):
        corpus = generate_hired_corpus(
            num_people=4, nominal_trials=3, condition_trials=1,
            cache=DatasetCache(tmp_path),
        )
        # nominal (3 trials x 3 offsets) + 7 conditions x 1 trial x 3
        # offsets per person, minus any preprocessing drops.
        per_person = np.bincount(corpus.labels)
        assert per_person.min() > 3 * 3
        assert len(corpus.profiles) == 4

    def test_concat_rejects_different_populations(self, tmp_path):
        from repro.datasets.standard import hired_spec, user_spec

        cache = DatasetCache(tmp_path)
        a = cache.get(hired_spec(num_people=3, trials_per_person=2))
        b = cache.get(user_spec(num_people=3, trials_per_person=2))
        with pytest.raises(ConfigError):
            concat_datasets([a, b])

    def test_concat_offsets_trial_ids(self, tmp_path):
        from repro.datasets.standard import hired_spec
        import dataclasses

        cache = DatasetCache(tmp_path)
        spec = hired_spec(num_people=3, trials_per_person=2)
        a = cache.get(spec)
        b = cache.get(dataclasses.replace(spec, recorder_seed=55))
        merged = concat_datasets([a, b])
        assert len(merged) == len(a) + len(b)
        # Trial ids from the second dataset do not collide with the first.
        assert merged.trial_ids.max() > a.trial_ids.max()

    def test_concat_rejects_empty(self):
        with pytest.raises(ConfigError):
            concat_datasets([])

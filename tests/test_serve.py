"""Concurrent serving layer: batching policy, backpressure, parity.

Every test that blocks on threads runs under a hand-rolled watchdog
(the environment has no pytest-timeout plugin): the test body executes
in a daemon thread and a hang fails the test instead of wedging the
whole suite.

The integration fixtures use an untrained (deterministically seeded)
compact extractor — the decisions are meaningless but the batching,
shedding and locking behaviour under test is the real serving path,
and bitwise parity between the served and direct results is exactly
as meaningful as with a trained model.
"""

from __future__ import annotations

import functools
import threading
import time
from types import SimpleNamespace

import pytest

from repro import obs
from repro.config import ServingConfig
from repro.errors import (
    AdmissionRejectedError,
    ConfigError,
    DeadlineExpiredError,
    ServingError,
)
from repro.serve import AuthServer, DynamicBatcher, RequestStatus, RWLock
from repro.serve import shm as serve_shm

WATCHDOG_S = 60.0


@pytest.fixture(autouse=True)
def _clean_shm_namespace():
    """Every serve test leaves the shared-memory namespace spotless.

    Thread-mode tests publish nothing, so this is free for them — but
    any test that (even accidentally) starts a process pool and leaks
    a segment fails here, loudly, instead of stranding /dev/shm.
    """
    yield
    serve_shm.assert_no_leaked_segments()


def watchdog(seconds: float = WATCHDOG_S):
    """Run the test body in a daemon thread; a hang fails, not wedges.

    Stands in for pytest-timeout (not installed here): ``join`` with a
    deadline, then ``pytest.fail`` while the stuck daemon thread dies
    with the process instead of blocking the session.
    """

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            outcome: dict = {}

            def body() -> None:
                try:
                    func(*args, **kwargs)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    outcome["error"] = exc

            thread = threading.Thread(target=body, daemon=True)
            thread.start()
            thread.join(seconds)
            if thread.is_alive():
                pytest.fail(
                    f"{func.__name__} exceeded the {seconds:.0f}s watchdog "
                    "(probable deadlock or missed wakeup)"
                )
            if "error" in outcome:
                raise outcome["error"]

        return wrapper

    return decorate


def _item(key="k", deadline=None):
    return SimpleNamespace(key=key, deadline=deadline, enqueued_at=0.0)


@pytest.fixture(scope="module")
def serve_system():
    """(system, user_id, probes): untrained but real serving substrate."""
    from repro.serve.loadgen import build_bench_system

    return build_bench_system(dtype="float32", num_probes=12)


# -- RWLock ---------------------------------------------------------------


class TestRWLock:
    @watchdog()
    def test_writer_excludes_readers(self):
        lock = RWLock()
        observed = []
        reader_started = threading.Event()

        def reader() -> None:
            reader_started.set()
            with lock.read_locked():
                observed.append("read")

        lock.acquire_write()
        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        reader_started.wait(5)
        time.sleep(0.05)
        assert observed == []  # reader is parked behind the writer
        observed.append("write-done")
        lock.release_write()
        thread.join(5)
        assert observed == ["write-done", "read"]

    @watchdog()
    def test_readers_share_and_block_writer(self):
        lock = RWLock()
        in_read = threading.Barrier(2)
        release = threading.Event()
        writer_done = threading.Event()

        def reader() -> None:
            with lock.read_locked():
                in_read.wait(5)  # both readers inside simultaneously
                release.wait(5)

        def writer() -> None:
            with lock.write_locked():
                writer_done.set()

        readers = [threading.Thread(target=reader, daemon=True) for _ in range(2)]
        for thread in readers:
            thread.start()
        wthread = threading.Thread(target=writer, daemon=True)
        wthread.start()
        time.sleep(0.05)
        assert not writer_done.is_set()  # readers still hold it
        release.set()
        wthread.join(5)
        assert writer_done.is_set()

    @watchdog()
    def test_write_reentrant_and_read_inside_write(self):
        lock = RWLock()
        with lock.write_locked():
            with lock.write_locked():  # renew() -> enroll() nesting
                with lock.read_locked():
                    pass
        # Fully released: another thread can take the write side.
        acquired = threading.Event()

        def writer() -> None:
            with lock.write_locked():
                acquired.set()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        thread.join(5)
        assert acquired.is_set()

    @watchdog()
    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        first_reading = threading.Event()
        release_first = threading.Event()
        second_read = threading.Event()

        def first_reader() -> None:
            with lock.read_locked():
                first_reading.set()
                release_first.wait(5)

        def writer() -> None:
            with lock.write_locked():
                pass

        def second_reader() -> None:
            with lock.read_locked():
                second_read.set()

        r1 = threading.Thread(target=first_reader, daemon=True)
        r1.start()
        first_reading.wait(5)
        w = threading.Thread(target=writer, daemon=True)
        w.start()
        time.sleep(0.05)  # writer is now queued behind the reader
        r2 = threading.Thread(target=second_reader, daemon=True)
        r2.start()
        time.sleep(0.05)
        assert not second_read.is_set()  # writer preference holds
        release_first.set()
        r2.join(5)
        assert second_read.is_set()


# -- DynamicBatcher -------------------------------------------------------


class TestDynamicBatcher:
    def test_offer_bounded_and_closed(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_s=10.0, capacity=2)
        assert batcher.offer(_item())
        assert batcher.offer(_item())
        assert not batcher.offer(_item())  # full
        assert batcher.depth == 2
        batcher.close()
        assert batcher.drain_pending() and batcher.depth == 0
        assert not batcher.offer(_item())  # closed

    @watchdog()
    def test_coalesces_by_key_in_fifo_order(self):
        batcher = DynamicBatcher(max_batch_size=8, max_wait_s=0.0, capacity=16)
        a1, a2, b1, a3 = _item("a"), _item("a"), _item("b"), _item("a")
        for item in (a1, a2, b1, a3):
            assert batcher.offer(item)
        first = batcher.next_batch()
        assert first == [a1, a2, a3]  # same-key items, submission order
        second = batcher.next_batch()
        assert second == [b1]

    @watchdog()
    def test_full_batch_dispatches_before_wait_window(self):
        batcher = DynamicBatcher(max_batch_size=2, max_wait_s=30.0, capacity=16)
        items = [_item() for _ in range(5)]
        for item in items:
            batcher.offer(item)
        t0 = time.monotonic()
        assert batcher.next_batch() == items[:2]
        assert batcher.next_batch() == items[2:4]
        assert time.monotonic() - t0 < 5.0  # did not wait out 30s windows

    @watchdog()
    def test_expired_items_are_shed_not_served(self):
        shed: list = []
        batcher = DynamicBatcher(
            max_batch_size=8, max_wait_s=0.0, capacity=16, on_shed=shed.append
        )
        expired = _item(deadline=time.monotonic() - 1.0)
        alive = _item()
        batcher.offer(expired)
        batcher.offer(alive)
        batch = batcher.next_batch()
        assert batch == [alive]
        assert shed == [expired]

    @watchdog()
    def test_close_drains_then_returns_none(self):
        batcher = DynamicBatcher(max_batch_size=8, max_wait_s=60.0, capacity=16)
        item = _item()
        batcher.offer(item)
        batcher.close()
        # Closing short-circuits the 60s coalescing window.
        assert batcher.next_batch() == [item]
        assert batcher.next_batch() is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            DynamicBatcher(max_batch_size=0, max_wait_s=1.0, capacity=4)
        with pytest.raises(ConfigError):
            DynamicBatcher(max_batch_size=4, max_wait_s=-1.0, capacity=4)
        with pytest.raises(ConfigError):
            DynamicBatcher(max_batch_size=4, max_wait_s=1.0, capacity=0)


class TestServingConfig:
    def test_defaults_valid(self):
        config = ServingConfig()
        assert config.max_batch_size >= 1 and config.queue_capacity >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_wait_ms": -1.0},
            {"queue_capacity": 0},
            {"num_workers": 0},
            {"drain_timeout_s": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            ServingConfig(**kwargs)


# -- AuthServer lifecycle + backpressure ----------------------------------


class TestAuthServer:
    @watchdog()
    def test_pre_start_coalescing_reaches_max_batch_size(self, serve_system):
        system, user_id, probes = serve_system
        config = ServingConfig(
            max_batch_size=4, max_wait_ms=5000.0, queue_capacity=64
        )
        server = AuthServer(system, config=config)
        with obs.collecting() as registry:
            futures = [
                server.verify(user_id, probes[i % len(probes)]) for i in range(8)
            ]
            server.start()
            for future in futures:
                assert future.result(timeout=30) is not None
            server.stop()
            snapshot = registry.to_dict()
        occupancy = snapshot["histograms"]["serve_batch_occupancy"]
        # Size, not the (huge) wait window, triggered dispatch: 8
        # same-key requests became exactly two full batches of 4.
        assert occupancy["count"] == 2
        assert occupancy["sum"] == 8.0

    @watchdog()
    def test_wait_window_bounds_idle_latency(self, serve_system):
        system, user_id, probes = serve_system
        config = ServingConfig(max_batch_size=64, max_wait_ms=50.0)
        with obs.collecting() as registry:
            with AuthServer(system, config=config) as server:
                t0 = time.perf_counter()
                result = server.verify(user_id, probes[0]).result(timeout=30)
                elapsed = time.perf_counter() - t0
            snapshot = registry.to_dict()
        assert result is not None
        # The lone request waited out (roughly) the 50 ms window, then
        # was served without needing 63 co-riders.
        assert elapsed >= 0.04
        assert elapsed < 10.0
        occupancy = snapshot["histograms"]["serve_batch_occupancy"]
        assert occupancy["count"] == 1 and occupancy["sum"] == 1.0

    @watchdog()
    def test_deadline_shedding(self, serve_system):
        system, user_id, probes = serve_system
        config = ServingConfig(max_batch_size=8, max_wait_ms=1.0)
        server = AuthServer(system, config=config)
        with obs.collecting() as registry:
            # Submitted before start: the deadline expires while queued.
            doomed = server.verify(user_id, probes[0], timeout_ms=5.0)
            healthy = server.verify(user_id, probes[1])
            time.sleep(0.05)
            server.start()
            assert healthy.result(timeout=30) is not None
            with pytest.raises(DeadlineExpiredError):
                doomed.result(timeout=30)
            server.stop()
            snapshot = registry.to_dict()
        assert doomed.status is RequestStatus.EXPIRED
        assert snapshot["counters"]['serve_shed_total'] == 1.0

    @watchdog()
    def test_bounded_queue_rejects_then_serves_accepted(self, serve_system):
        system, user_id, probes = serve_system
        config = ServingConfig(max_batch_size=8, max_wait_ms=1.0, queue_capacity=4)
        server = AuthServer(system, config=config)
        futures = [server.verify(user_id, probes[i]) for i in range(5)]
        # The fifth submission overflowed the bounded queue: rejected
        # immediately, without blocking the submitter.
        assert futures[4].done()
        assert futures[4].status is RequestStatus.REJECTED
        with pytest.raises(AdmissionRejectedError):
            futures[4].result(timeout=1)
        server.start()
        for future in futures[:4]:
            assert future.result(timeout=30) is not None
        server.stop()

    @watchdog()
    def test_drain_on_shutdown_completes_accepted(self, serve_system):
        system, user_id, probes = serve_system
        # A window long enough that only the drain can explain the
        # requests resolving promptly.
        config = ServingConfig(max_batch_size=64, max_wait_ms=20000.0)
        server = AuthServer(system, config=config).start()
        futures = [
            server.verify(user_id, probes[i % len(probes)]) for i in range(6)
        ]
        assert server.stop(drain=True) is True
        for future in futures:
            assert future.status is RequestStatus.OK
            assert future.result(timeout=1) is not None

    @watchdog()
    def test_stop_without_drain_rejects_pending(self, serve_system):
        system, user_id, probes = serve_system
        server = AuthServer(system)  # never started: requests stay queued
        futures = [server.verify(user_id, probes[i]) for i in range(3)]
        server.stop(drain=False)
        for future in futures:
            assert future.status is RequestStatus.REJECTED

    @watchdog()
    def test_submit_after_stop_is_rejected(self, serve_system):
        system, user_id, probes = serve_system
        server = AuthServer(system).start()
        server.stop()
        future = server.verify(user_id, probes[0])
        assert future.status is RequestStatus.REJECTED
        with pytest.raises(ServingError):
            server.start()

    def test_rejects_nonpositive_timeout(self, serve_system):
        system, user_id, probes = serve_system
        server = AuthServer(system)
        with pytest.raises(ConfigError):
            server.verify(user_id, probes[0], timeout_ms=0.0)


# -- decision parity with the direct batch APIs ---------------------------


def _assert_same_result(served, direct, strict=True):
    """Served vs direct parity.

    ``strict=True`` demands bitwise-equal distances — valid whenever the
    micro-batch composition matches the direct call (the engine forward
    is deterministic in the batch *content*).  With a different batch
    split the BLAS gemms take different blocking paths, so distances
    agree only to float re-association (the same tolerance the golden
    engine suite pins batch-vs-single parity at) while the decisions
    must still be identical.
    """
    if direct is None:
        assert served is None
        return
    assert served.accepted == direct.accepted
    if strict:
        assert served.distance == direct.distance  # bitwise, not approx
    else:
        assert served.distance == pytest.approx(direct.distance, rel=1e-9)
    assert served.threshold == direct.threshold
    assert served.user_id == direct.user_id


class TestParity:
    @watchdog()
    def test_verify_bitwise_equal_when_batch_matches(self, serve_system):
        system, user_id, probes = serve_system
        direct = system.verify_many(user_id, probes)
        # All requests queued before start -> one micro-batch with the
        # exact composition of the direct call -> bitwise equality.
        config = ServingConfig(max_batch_size=64, max_wait_ms=50.0)
        server = AuthServer(system, config=config)
        futures = [server.verify(user_id, probe) for probe in probes]
        server.start()
        served = [future.result(timeout=30) for future in futures]
        server.stop()
        for got, want in zip(served, direct):
            _assert_same_result(got, want, strict=True)

    @watchdog()
    def test_verify_decisions_stable_across_batch_splits(self, serve_system):
        system, user_id, probes = serve_system
        direct = system.verify_many(user_id, probes)
        # max_batch_size=5 forces uneven micro-batches (5 + 5 + 2):
        # decisions must not depend on how the batcher split the queue.
        config = ServingConfig(max_batch_size=5, max_wait_ms=50.0)
        server = AuthServer(system, config=config)
        futures = [server.verify(user_id, probe) for probe in probes]
        server.start()
        served = [future.result(timeout=30) for future in futures]
        server.stop()
        for got, want in zip(served, direct):
            _assert_same_result(got, want, strict=False)

    @watchdog()
    def test_identify_bitwise_equal_when_batch_matches(self, serve_system):
        system, user_id, probes = serve_system
        direct = system.identify_many(probes[:6])
        config = ServingConfig(max_batch_size=64, max_wait_ms=50.0)
        server = AuthServer(system, config=config)
        futures = [server.identify(probe) for probe in probes[:6]]
        server.start()
        served = [future.result(timeout=30) for future in futures]
        server.stop()
        for got, want in zip(served, direct):
            _assert_same_result(got, want, strict=True)

    @watchdog()
    def test_concurrent_submitters_match_direct(self, serve_system):
        system, user_id, probes = serve_system
        direct = system.verify_many(user_id, probes)
        config = ServingConfig(max_batch_size=8, max_wait_ms=5.0)
        results: list = [None] * len(probes)
        with AuthServer(system, config=config) as server:
            barrier = threading.Barrier(len(probes))

            def client(index: int) -> None:
                barrier.wait(10)
                results[index] = server.verify(user_id, probes[index]).result(
                    timeout=30
                )

            threads = [
                threading.Thread(target=client, args=(i,), daemon=True)
                for i in range(len(probes))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)
        # Batch composition under concurrency is nondeterministic, so
        # this is the split-tolerant comparison.
        for got, want in zip(results, direct):
            _assert_same_result(got, want, strict=False)

    @watchdog()
    def test_mutations_serialize_against_scoring(self, serve_system):
        system, user_id, probes = serve_system
        reference = system.verify(user_id, probes[0])
        config = ServingConfig(max_batch_size=8, max_wait_ms=2.0)
        enroll_recordings = probes[:4]
        stop_mutating = threading.Event()

        def mutator() -> None:
            index = 0
            while not stop_mutating.is_set():
                name = f"serve-tmp-{index}"
                system.enroll(name, enroll_recordings)
                system.revoke(name)
                index += 1

        thread = threading.Thread(target=mutator, daemon=True)
        try:
            with AuthServer(system, config=config) as server:
                thread.start()
                for _ in range(10):
                    result = server.verify(user_id, probes[0]).result(timeout=30)
                    # Enroll/revoke churn on other users never perturbs
                    # this user's decision — mutations swap state only
                    # under the write lock, between batches.
                    _assert_same_result(result, reference)
        finally:
            stop_mutating.set()
            thread.join(30)
        assert not thread.is_alive()


# -- eval-cache concurrency (satellite: lock-guarded first touch) ---------


class TestEvalCacheConcurrency:
    @staticmethod
    def _fresh_system():
        from repro.config import (
            ExtractorConfig,
            InferenceConfig,
            MandiPassConfig,
            SecurityConfig,
        )
        from repro.core.extractor import TwoBranchExtractor
        from repro.core.system import MandiPass

        extractor_config = ExtractorConfig(embedding_dim=64, channels=(4, 8, 16))
        config = MandiPassConfig(
            extractor=extractor_config,
            security=SecurityConfig(
                template_dim=64, projected_dim=64, matrix_seed=1
            ),
            inference=InferenceConfig(compute_dtype="float32"),
        )
        model = TwoBranchExtractor(extractor_config, num_classes=4, seed=0).eval()
        return MandiPass(model, config=config)

    @watchdog()
    def test_concurrent_first_touch_builds_each_entry_once(self, serve_system):
        _, _, probes = serve_system
        num_threads = 4

        # Reference: how many cache builds one cold pass performs.
        cold = self._fresh_system()
        cold.enroll("u", probes[:4])
        with obs.collecting() as registry:
            baseline = cold.verify_many("u", probes)
            misses_single = registry.to_dict()["counters"].get(
                'eval_cache_total{result="miss"}', 0.0
            )
        assert misses_single > 0  # float32 eval casts exercise the cache

        # Concurrent cold start on an identical system: same number of
        # builds (each entry built exactly once) and identical outputs.
        system = self._fresh_system()
        system.enroll("u", probes[:4])
        outputs: list = [None] * num_threads
        barrier = threading.Barrier(num_threads)

        def worker(index: int) -> None:
            barrier.wait(10)
            outputs[index] = system.verify_many("u", probes)

        with obs.collecting() as registry:
            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(num_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)
            misses_concurrent = registry.to_dict()["counters"].get(
                'eval_cache_total{result="miss"}', 0.0
            )
        assert misses_concurrent == misses_single
        for result_list in outputs:
            assert result_list is not None
            for got, want in zip(result_list, baseline):
                _assert_same_result(got, want)


# -- shutdown edge cases (stop/submit races, worker death) ----------------


class TestShutdownEdgeCases:
    @watchdog()
    def test_stop_racing_submissions_leaves_no_pending_future(
        self, serve_system
    ):
        """Every future submitted across a stop() reaches a terminal state.

        A submitter hammers the server while the main thread stops it:
        whichever side of admission each request lands on, its future
        must resolve (served by the drain or rejected) — never hang in
        PENDING.
        """
        system, user_id, probes = serve_system
        config = ServingConfig(max_batch_size=4, max_wait_ms=1.0)
        server = AuthServer(system, config=config).start()
        futures: list = []
        submitting = threading.Event()

        def submitter() -> None:
            for i in range(40):
                futures.append(server.verify(user_id, probes[i % len(probes)]))
                submitting.set()

        thread = threading.Thread(target=submitter, daemon=True)
        thread.start()
        submitting.wait(5)  # overlap stop() with live submissions
        assert server.stop(drain=True) is True
        thread.join(10)
        assert len(futures) == 40
        for future in futures:
            assert future.wait(30), "future left pending across stop()"
            assert future.status in (
                RequestStatus.OK,
                RequestStatus.REJECTED,
            )

    @watchdog()
    def test_double_stop_is_idempotent(self, serve_system):
        system, user_id, probes = serve_system
        server = AuthServer(system).start()
        future = server.verify(user_id, probes[0])
        assert server.stop(drain=True) is True
        assert future.status is RequestStatus.OK
        # Stopping again (any flavour) is a no-op that still reports
        # the workers as down.
        assert server.stop(drain=True) is True
        assert server.stop(drain=False) is True

    @watchdog()
    def test_stop_never_started_then_stop_again(self, serve_system):
        system, user_id, probes = serve_system
        server = AuthServer(system)
        future = server.verify(user_id, probes[0])
        server.stop()
        assert future.status is RequestStatus.REJECTED
        assert server.stop() is True  # second stop: nothing left to do

    @watchdog()
    def test_worker_death_settles_each_future_exactly_once(
        self, serve_system, monkeypatch
    ):
        """Injected worker death: the doomed batch's futures settle once.

        The dying worker fails the whole batch and its replacement must
        not answer those futures a second time; counting *successful*
        settles through the idempotent ``_settle`` pins exactly-once.
        """
        from repro.faults import FaultPlan, FaultRule
        from repro.errors import WorkerKilledError
        from repro.serve.server import AuthFuture

        system, user_id, probes = serve_system
        settle_counts: dict[int, int] = {}
        original = AuthFuture._settle

        def counting(self, value, error, status):
            settled = original(self, value, error, status)
            if settled:
                settle_counts[id(self)] = settle_counts.get(id(self), 0) + 1
            return settled

        monkeypatch.setattr(AuthFuture, "_settle", counting)
        config = ServingConfig(
            num_workers=1, max_batch_size=4, max_wait_ms=5000.0
        )
        server = AuthServer(system, config=config)
        plan = FaultPlan(
            [FaultRule("serve.worker", "kill", max_fires=1)], seed=0
        )
        with plan.active():
            with server:
                doomed = [server.verify(user_id, probes[i]) for i in range(4)]
                for future in doomed:
                    assert future.wait(30)
                    assert future.status is RequestStatus.FAILED
                    assert isinstance(future.exception(0), WorkerKilledError)
                # The respawned worker still serves fresh traffic.
                survivor = server.verify(user_id, probes[4])
                assert survivor.wait(30)
                assert survivor.status is RequestStatus.OK
        assert set(settle_counts.values()) == {1}
        assert len(settle_counts) == 5

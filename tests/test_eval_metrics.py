"""FRR / FAR / EER / VSR metric tests (Eq. 9-11)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.eval.metrics import (
    equal_error_rate,
    far_frr_curve,
    false_accept_rate,
    false_reject_rate,
    roc_points,
    verification_success_rate,
)


class TestRates:
    def test_frr_counts_genuine_beyond_threshold(self):
        genuine = np.array([0.1, 0.2, 0.5, 0.9])
        assert false_reject_rate(genuine, 0.3) == pytest.approx(0.5)

    def test_far_counts_impostor_within_threshold(self):
        impostor = np.array([0.2, 0.6, 0.8, 1.0])
        assert false_accept_rate(impostor, 0.5) == pytest.approx(0.25)

    def test_vsr_is_complement_of_frr(self):
        genuine = np.array([0.1, 0.2, 0.5, 0.9])
        assert verification_success_rate(genuine, 0.3) == pytest.approx(0.5)

    def test_boundary_is_accepted(self):
        """accept iff distance <= t: equality counts as accept."""
        assert false_reject_rate(np.array([0.3]), 0.3) == 0.0
        assert false_accept_rate(np.array([0.3]), 0.3) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            false_reject_rate(np.array([]), 0.5)

    def test_rejects_nan(self):
        with pytest.raises(ShapeError):
            false_accept_rate(np.array([np.nan]), 0.5)


class TestCurve:
    def test_far_monotone_rising_frr_falling(self, rng):
        genuine = rng.normal(0.2, 0.05, 500)
        impostor = rng.normal(0.8, 0.1, 500)
        _, far, frr = far_frr_curve(genuine, impostor)
        assert np.all(np.diff(far) >= 0.0)
        assert np.all(np.diff(frr) <= 0.0)

    def test_extremes(self, rng):
        genuine = rng.uniform(0.0, 0.4, 100)
        impostor = rng.uniform(0.6, 1.0, 100)
        thresholds, far, frr = far_frr_curve(genuine, impostor)
        assert far[0] == 0.0 and frr[0] > 0.9
        assert far[-1] == 1.0 and frr[-1] == 0.0

    def test_explicit_thresholds_respected(self, rng):
        genuine = rng.normal(0.2, 0.05, 100)
        impostor = rng.normal(0.8, 0.1, 100)
        thresholds = np.array([0.0, 0.5, 1.5])
        t, far, frr = far_frr_curve(genuine, impostor, thresholds=thresholds)
        np.testing.assert_array_equal(t, thresholds)
        assert far[0] == pytest.approx(false_accept_rate(impostor, 0.0))


class TestEER:
    def test_perfect_separation_zero_eer(self, rng):
        genuine = rng.uniform(0.0, 0.3, 1000)
        impostor = rng.uniform(0.7, 1.0, 1000)
        result = equal_error_rate(genuine, impostor)
        assert result.eer == pytest.approx(0.0, abs=1e-6)
        assert 0.3 < result.threshold < 0.7

    def test_total_overlap_half_eer(self, rng):
        scores = rng.normal(0.5, 0.1, 5000)
        result = equal_error_rate(scores, scores.copy())
        assert result.eer == pytest.approx(0.5, abs=0.02)

    def test_known_gaussian_overlap(self, rng):
        """Two unit-variance Gaussians 2 sigma apart: EER = Phi(-1) ~ 15.9 %."""
        genuine = rng.normal(0.0, 1.0, 200_000)
        impostor = rng.normal(2.0, 1.0, 200_000)
        result = equal_error_rate(genuine, impostor)
        assert result.eer == pytest.approx(0.1587, abs=0.01)

    def test_far_equals_frr_at_threshold(self, rng):
        genuine = rng.normal(0.3, 0.1, 5000)
        impostor = rng.normal(0.7, 0.1, 5000)
        result = equal_error_rate(genuine, impostor)
        assert result.far_at_threshold == pytest.approx(
            result.frr_at_threshold, abs=0.02
        )

    def test_swapping_distributions_keeps_eer_meaningful(self, rng):
        genuine = rng.normal(0.3, 0.1, 2000)
        impostor = rng.normal(0.7, 0.1, 2000)
        result = equal_error_rate(genuine, impostor)
        assert 0.0 <= result.eer < 0.1


class TestROC:
    def test_roc_bounds(self, rng):
        genuine = rng.normal(0.3, 0.1, 500)
        impostor = rng.normal(0.7, 0.1, 500)
        far, tar = roc_points(genuine, impostor)
        assert np.all((far >= 0) & (far <= 1))
        assert np.all((tar >= 0) & (tar <= 1))
        assert np.all(np.diff(far) >= 0)
        assert np.all(np.diff(tar) >= 0)
